// Console table / CSV emission for the benchmark harness.
//
// Every bench binary prints the same rows/series the paper's figure or table
// reports; TablePrinter keeps that output aligned and machine-parsable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gilfree {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  /// Renders an aligned ASCII table.
  std::string to_string() const;

  /// Renders comma-separated values (header + rows).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gilfree
