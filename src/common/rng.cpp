#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace gilfree {

namespace {
inline u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

u64 mix64(u64 x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(u64 seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

u64 Rng::next_u64() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::next_below(u64 bound) {
  GILFREE_CHECK(bound != 0);
  // Rejection sampling to avoid modulo bias.
  const u64 threshold = (0 - bound) % bound;
  for (;;) {
    const u64 r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 random bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  GILFREE_CHECK(mean > 0.0);
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() {
  Rng child(next_u64() ^ 0xa0761d6478bd642fULL);
  return child;
}

}  // namespace gilfree
