// Small statistics helpers used by the benchmark harness and the TLE runtime
// statistics: running mean/variance, fixed-bucket histograms, and named
// counters.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace gilfree {

/// Welford running mean / variance / min / max.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Histogram over [lo, hi) with uniform buckets plus under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, u64 weight = 1);
  u64 total() const { return total_; }
  u64 bucket_count(std::size_t i) const { return counts_.at(i); }
  std::size_t buckets() const { return counts_.size(); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  u64 underflow() const { return underflow_; }
  u64 overflow() const { return overflow_; }
  /// Linear-interpolated quantile (q in [0,1]) over the bucketed range.
  double quantile(double q) const;
  std::string to_string(std::size_t max_rows = 16) const;

 private:
  double lo_, hi_, width_;
  std::vector<u64> counts_;
  u64 underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Ordered string-keyed counters; used for abort-reason breakdowns.
class CounterMap {
 public:
  void add(const std::string& key, u64 delta = 1) { map_[key] += delta; }
  u64 get(const std::string& key) const;
  u64 total() const;
  const std::map<std::string, u64>& entries() const { return map_; }
  std::string to_string() const;

 private:
  std::map<std::string, u64> map_;
};

}  // namespace gilfree
