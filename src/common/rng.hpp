// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs and platforms, so we use
// our own xoshiro256** implementation (public-domain algorithm by Blackman &
// Vigna) instead of std::mt19937 + distributions, whose outputs are not
// specified identically across standard libraries.
#pragma once

#include "common/types.hpp"

namespace gilfree {

/// SplitMix64: used to seed the main generator and as a cheap standalone
/// mixer for hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// Stateless 64-bit mix, usable as a hash finalizer.
u64 mix64(u64 x);

/// xoshiro256**: fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(u64 seed = 0x5eed5eed5eedULL);

  /// Uniform u64.
  u64 next_u64();

  /// Uniform in [0, bound). bound must be nonzero.
  u64 next_below(u64 bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  /// Jump to an independent stream; used to derive per-CPU generators.
  Rng split();

 private:
  u64 s_[4];
};

}  // namespace gilfree
