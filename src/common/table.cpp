#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace gilfree {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GILFREE_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  GILFREE_CHECK_MSG(cells.size() == headers_.size(),
                    "row has " << cells.size() << " cells, expected "
                               << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += std::string(widths[c], '-') + "  ";
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TablePrinter::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TablePrinter::print(std::ostream& os) const { os << to_string(); }

}  // namespace gilfree
