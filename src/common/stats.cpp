#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace gilfree {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::reset() { *this = RunningStat{}; }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  GILFREE_CHECK(hi > lo);
  GILFREE_CHECK(buckets > 0);
}

void Histogram::add(double x, u64 weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge case
  counts_[idx] += weight;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  GILFREE_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_rows) const {
  std::ostringstream os;
  const std::size_t step = std::max<std::size_t>(1, counts_.size() / max_rows);
  for (std::size_t i = 0; i < counts_.size(); i += step) {
    u64 sum = 0;
    for (std::size_t j = i; j < std::min(i + step, counts_.size()); ++j)
      sum += counts_[j];
    os << "[" << bucket_lo(i) << ", "
       << bucket_hi(std::min(i + step, counts_.size()) - 1) << "): " << sum
       << "\n";
  }
  if (underflow_) os << "underflow: " << underflow_ << "\n";
  if (overflow_) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

u64 CounterMap::get(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? 0 : it->second;
}

u64 CounterMap::total() const {
  u64 t = 0;
  for (const auto& [k, v] : map_) t += v;
  return t;
}

std::string CounterMap::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : map_) os << k << ": " << v << "\n";
  return os.str();
}

}  // namespace gilfree
