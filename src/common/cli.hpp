// Minimal --key=value command-line parsing for the bench and example
// binaries. No external dependency; unknown flags are an error so typos in
// sweep scripts fail fast.
#pragma once

#include <map>
#include <set>
#include <string>

namespace gilfree {

class CliFlags {
 public:
  /// Parses argv of the form: --name=value or bare --name (value "true").
  /// Positional arguments are collected separately.
  CliFlags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  long get_int(const std::string& name, long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::set<std::string>& positional() const { return positional_; }

  /// Call after all get()s: throws if the user passed a flag nobody read.
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> flags_;
  std::set<std::string> positional_;
  mutable std::set<std::string> consumed_;
};

}  // namespace gilfree
