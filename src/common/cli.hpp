// Minimal --key=value command-line parsing for the bench and example
// binaries. No external dependency; unknown flags are an error so typos in
// sweep scripts fail fast.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gilfree {

class CliFlags {
 public:
  /// Parses argv of the form: --name=value or bare --name (value "true").
  /// Positional arguments are collected separately.
  ///
  /// Malformed input (single-dash flags, empty flag names, non-numeric
  /// values handed to get_int/get_double, unknown flags at
  /// reject_unknown()) prints `error: ...` to stderr and exits with
  /// status 2 — sweep scripts fail fast. Tests construct with
  /// `throw_errors = true` to get std::invalid_argument instead.
  CliFlags(int argc, char** argv, bool throw_errors = false);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  long get_int(const std::string& name, long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::set<std::string>& positional() const { return positional_; }

  /// The --flag arguments exactly as passed, in argv order (positionals
  /// excluded). Record-file headers stash these so tools/replay can rebuild
  /// the same CliFlags in another process.
  const std::vector<std::string>& raw_args() const { return raw_args_; }

  /// Call after all get()s: errors if the user passed a flag nobody read.
  void reject_unknown() const;

 private:
  [[noreturn]] void fail(const std::string& msg) const;

  std::map<std::string, std::string> flags_;
  std::set<std::string> positional_;
  std::vector<std::string> raw_args_;
  mutable std::set<std::string> consumed_;
  bool throw_errors_ = false;
};

}  // namespace gilfree
