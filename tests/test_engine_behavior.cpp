// Engine-level behavioural tests: the GIL-mode timer yields (§3.2),
// blocking I/O releasing the GIL, scheduler fairness, and the sync-mode
// comparators.
#include <gtest/gtest.h>

#include "runtime/engine.hpp"

namespace gilfree {
namespace {

using runtime::Engine;
using runtime::EngineConfig;
using runtime::RunStats;

RunStats run_cfg(EngineConfig cfg, const std::string& src) {
  cfg.heap.initial_slots = 80'000;
  Engine engine(std::move(cfg));
  engine.load_program({src});
  return engine.run();
}

TEST(EngineBehavior, GilTimerYieldsRotateThreads) {
  // §3.2: the timer thread flags the runner every quantum; it yields at the
  // next original yield point. With two compute threads both must finish.
  auto cfg = EngineConfig::gil(htm::SystemProfile::zec12());
  cfg.gil_quantum = 20'000;  // small quantum → many yields
  const RunStats stats = run_cfg(std::move(cfg), R"(
ts = []
2.times do |i|
  ts << Thread.new(i) do |tid|
    x = 0
    k = 0
    while k < 20000
      x += 1
      k += 1
    end
    __record("x" + tid.to_s, x)
  end
end
ts.each do |t|
  t.join
end
)");
  EXPECT_DOUBLE_EQ(stats.results.at("x0"), 20000.0);
  EXPECT_DOUBLE_EQ(stats.results.at("x1"), 20000.0);
  EXPECT_GT(stats.gil.yields, 5u) << "timer-driven GIL yields happened";
}

TEST(EngineBehavior, NoYieldsWithSingleThreadUnderGil) {
  auto cfg = EngineConfig::gil(htm::SystemProfile::zec12());
  cfg.gil_quantum = 10'000;
  const RunStats stats = run_cfg(std::move(cfg), R"(
x = 0
k = 0
while k < 20000
  x += 1
  k += 1
end
__record("x", x)
)");
  EXPECT_EQ(stats.gil.yields, 0u)
      << "§3.2: no yield operations with one application thread";
}

TEST(EngineBehavior, BlockingIoOverlapsUnderGil) {
  // §3.2: the GIL is released around blocking operations, so two threads
  // each sleeping 2000 µs overlap instead of serializing.
  auto run_threads = [](unsigned n) {
    auto cfg = EngineConfig::gil(htm::SystemProfile::xeon_e3());
    cfg.heap.initial_slots = 60'000;
    Engine engine(std::move(cfg));
    engine.load_program(
        {"$n = " + std::to_string(n) + "\n", R"(
ts = []
$n.times do |i|
  ts << Thread.new(i) do |tid|
    io_wait(2000)
  end
end
ts.each do |t|
  t.join
end
__record("done", 1)
)"});
    return engine.run();
  };
  const RunStats one = run_threads(1);
  const RunStats four = run_threads(4);
  // Four overlapping sleeps take well under 4x one sleep.
  EXPECT_LT(static_cast<double>(four.total_cycles),
            2.0 * static_cast<double>(one.total_cycles));
  EXPECT_GT(four.breakdown.blocked_io, 0u);
}

TEST(EngineBehavior, FineGrainedBeatsGilOnComputeBoundWork) {
  const std::string src = R"(
$out = Array.new(8, 0)
ts = []
4.times do |i|
  ts << Thread.new(i) do |tid|
    x = 0
    k = 0
    while k < 8000
      x += k
      k += 1
    end
    $out[tid] = x
  end
end
ts.each do |t|
  t.join
end
__record("sum", $out[0] + $out[1] + $out[2] + $out[3])
)";
  const RunStats gil =
      run_cfg(EngineConfig::gil(htm::SystemProfile::zec12()), src);
  const RunStats fine =
      run_cfg(EngineConfig::fine_grained(htm::SystemProfile::zec12()), src);
  const RunStats unsync =
      run_cfg(EngineConfig::unsynced(htm::SystemProfile::zec12()), src);
  EXPECT_EQ(gil.results.at("sum"), fine.results.at("sum"));
  EXPECT_EQ(gil.results.at("sum"), unsync.results.at("sum"));
  EXPECT_LT(fine.total_cycles, gil.total_cycles / 2);
  EXPECT_LE(unsync.total_cycles, fine.total_cycles)
      << "no internal locks beats fine-grained locks";
}

TEST(EngineBehavior, MutexDeadlockHitsInstructionBudget) {
  // A never-released Mutex leaves the worker polling forever; the polling
  // retries retire instructions, so the instruction budget catches the
  // deadlock deterministically.
  auto cfg = EngineConfig::gil(htm::SystemProfile::xeon_e3());
  cfg.heap.initial_slots = 30'000;
  cfg.max_insns = 100'000;
  Engine engine(std::move(cfg));
  engine.load_program({R"(
$m = Mutex.new
$m.lock
t = Thread.new(0) do |z|
  $m.lock
end
t.join
)"});
  EXPECT_THROW(engine.run(), CheckFailure);
}

TEST(EngineBehavior, MaxInsnsBudgetGuards) {
  auto cfg = EngineConfig::gil(htm::SystemProfile::xeon_e3());
  cfg.heap.initial_slots = 30'000;
  cfg.max_insns = 1'000;
  Engine engine(std::move(cfg));
  engine.load_program({R"(
x = 0
while true
  x += 1
end
)"});
  EXPECT_THROW(engine.run(), CheckFailure);
}

TEST(EngineBehavior, TryLockSemantics) {
  const RunStats stats = run_cfg(
      EngineConfig::htm_dynamic(htm::SystemProfile::xeon_e3()), R"(
m = Mutex.new
a = m.try_lock
b = m.try_lock
m.unlock
c = m.try_lock
r = 0
if a
  r += 100
end
if b
  r += 10
end
if c
  r += 1
end
__record("r", r)
)");
  EXPECT_DOUBLE_EQ(stats.results.at("r"), 101.0);
}

TEST(EngineBehavior, CondvarBroadcastWakesAllWaiters) {
  const RunStats stats = run_cfg(
      EngineConfig::htm_dynamic(htm::SystemProfile::zec12()), R"(
$m = Mutex.new
$cv = ConditionVariable.new
$ready = 0
$go = false
$woke = 0
ts = []
3.times do |i|
  ts << Thread.new(i) do |tid|
    $m.lock
    $ready += 1
    while !$go
      $cv.wait($m)
    end
    $woke += 1
    $m.unlock
  end
end
while true
  $m.lock
  r = $ready
  $m.unlock
  if r == 3
    break
  end
  io_wait(50)
end
$m.lock
$go = true
$cv.broadcast
$m.unlock
ts.each do |t|
  t.join
end
__record("woke", $woke)
)");
  EXPECT_DOUBLE_EQ(stats.results.at("woke"), 3.0);
}

}  // namespace
}  // namespace gilfree
