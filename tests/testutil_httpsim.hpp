// Shared helpers for the httpsim differential tests (mirrors the
// run/trace-capture pattern of test_interp_modes.cpp): run a (possibly
// sharded) server workload while capturing the request log, the trace file
// bytes, and the metrics document; plus an independent "serialized
// reference" that re-partitions the same load by hand and runs the shard
// engines in reverse order, proving shards are isolated simulations whose
// merged result is execution-order independent.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "httpsim/bench_server.hpp"
#include "httpsim/client_driver.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "runtime/engine.hpp"

namespace gilfree::testutil {

struct HttpObserved {
  httpsim::ShardedRunResult result;
  std::string trace;    ///< Trace file bytes (all shard runs).
  std::string metrics;  ///< metrics_to_json over the sink's runs.
};

/// Runs the workload through the production run_sharded() path with a
/// capturing sink, and returns everything a differential comparison needs.
inline HttpObserved run_observed(const runtime::EngineConfig& base,
                                 const std::string& program,
                                 const httpsim::DriverConfig& d,
                                 const httpsim::ShardOptions& so,
                                 const std::string& tag) {
  static std::atomic<u64> counter{0};
  obs::ObsConfig oc;
  oc.trace_path = ::testing::TempDir() + "httpsim_modes_" + tag + "_" +
                  std::to_string(counter.fetch_add(1)) + ".jsonl";
  HttpObserved o;
  {
    obs::Sink sink(oc);
    o.result = httpsim::run_sharded(base, program, d, so, &sink,
                                    {{"figure", "test_httpsim_modes"}});
    sink.flush();
    o.metrics = obs::metrics_to_json(sink.runs());
  }
  std::ifstream f(oc.trace_path);
  std::stringstream buf;
  buf << f.rdbuf();
  o.trace = buf.str();
  std::remove(oc.trace_path.c_str());
  return o;
}

struct ReferenceResult {
  std::string request_log;  ///< Global-id-ordered merge.
  obs::LatencyHistogram latency_hist;
  obs::LatencyHistogram queue_hist;
  u64 completed = 0;
  u64 dropped = 0;
  std::vector<runtime::RunStats> stats;  ///< Indexed by shard id.
};

/// Independent reimplementation of the sharded run: partitions the load
/// with the same deterministic rules (router over the pre-generated
/// schedule, round-robin client/request split for the closed loop) but
/// builds each engine by hand and executes the shards in REVERSE order.
/// If shards are truly independent simulations, the merged result must be
/// identical to run_sharded()'s.
inline ReferenceResult run_serialized_reference(
    const runtime::EngineConfig& base, const std::string& program,
    const httpsim::DriverConfig& d, const httpsim::ShardOptions& so) {
  using httpsim::Arrival;
  const double ghz = base.profile.machine.ghz;
  const u32 shards = so.shards;

  std::vector<httpsim::DriverConfig> shard_cfg(shards, d);
  std::vector<std::vector<httpsim::ScheduledRequest>> shard_sched(shards);
  if (d.arrival == Arrival::kClosed) {
    i64 next_id = d.first_id;
    for (u32 s = 0; s < shards; ++s) {
      shard_cfg[s].clients = d.clients / shards + (s < d.clients % shards);
      shard_cfg[s].total_requests =
          d.total_requests / shards + (s < d.total_requests % shards);
      shard_cfg[s].first_id = next_id;
      next_id += shard_cfg[s].total_requests;
    }
  } else {
    for (const auto& r : httpsim::make_schedule(d, ghz)) {
      shard_sched[httpsim::route_request(so.router, r.id, shards, d.seed)]
          .push_back(r);
    }
  }

  ReferenceResult out;
  out.stats.resize(shards);
  std::vector<httpsim::RequestRecord> merged;
  for (u32 i = 0; i < shards; ++i) {
    const u32 s = shards - 1 - i;  // reverse execution order
    runtime::EngineConfig cfg = base;
    cfg.shard_id = s;
    cfg.shard_count = shards;
    std::unique_ptr<httpsim::HttpDriver> driver;
    if (d.arrival == Arrival::kClosed) {
      cfg.heap.max_threads = shard_cfg[s].total_requests + 8;
      driver = std::make_unique<httpsim::ClosedLoopDriver>(shard_cfg[s]);
    } else {
      cfg.heap.max_threads = static_cast<u32>(shard_sched[s].size()) + 8;
      driver = std::make_unique<httpsim::OpenLoopDriver>(shard_cfg[s],
                                                         shard_sched[s]);
    }
    runtime::Engine engine(std::move(cfg));
    engine.load_program({program});
    engine.attach_server(driver.get());
    out.stats[s] = engine.run();
    out.latency_hist.merge(driver->latency_hist());
    out.queue_hist.merge(driver->queue_hist());
    out.completed += driver->completed();
    out.dropped += driver->dropped();
    merged.insert(merged.end(), driver->log().begin(), driver->log().end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const httpsim::RequestRecord& a,
               const httpsim::RequestRecord& b) { return a.id < b.id; });
  out.request_log = httpsim::format_request_log(merged, d.paths);
  return out;
}

}  // namespace gilfree::testutil
