// Tier-2 STM engine tests (docs/TIERS.md).
//
// Unit level (StmEngine with no HTM facility):
//   - conflicting writers of one line never both commit, across seeded
//     random interleavings (including blind stores neither reader saw),
//   - the lazy-subscription zombie hazard: a transaction that read half of
//     a two-word invariant before a non-transactional writer broke it
//     observes torn state, and commit-time validation refuses the commit,
//   - incremental yield-point validation catches the same zombie early,
//   - eager subscription dooms live transactions at GIL acquisition,
//   - lazy subscription refuses to commit while the GIL word is held,
//   - read/write capacity overflows abort with the dedicated causes.
//
// Engine level:
//   - with the tier disabled, traces/metrics/stats are byte-identical no
//     matter how the other --stm-* knobs are set, on both machine profiles
//     and both engines (the differential guarantee vs the seed),
//   - under a persistent-abort campaign the tier engages (escalations and
//     commits > 0), produces the same program results as the GIL and
//     STM-off paths, and serializes measurably less time on the GIL,
//   - the same seeded run is trace-deterministic,
//   - strict-CLI rejection for every new flag.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "htm/profile.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "runtime/engine.hpp"
#include "stm/stm.hpp"
#include "testutil_programs.hpp"

namespace gilfree {
namespace {

using runtime::EngineConfig;
using stm::GilSubscription;
using stm::StmAbortCause;
using stm::StmConfig;
using stm::StmEngine;

StmConfig unit_config() {
  StmConfig c;
  c.enabled = true;
  c.line_bytes = 256;
  return c;
}

// 256 B = 32 u64 slots per line; the array spans exactly four lines.
struct alignas(256) SharedLines {
  u64 slots[128] = {};
};

u64 aborts_of(const StmEngine& e, StmAbortCause c) {
  return e.stats().aborts_by_cause[static_cast<std::size_t>(c)];
}

// --- conflicting writers ----------------------------------------------------

TEST(StmUnit, ConflictingWritersNeverBothCommit) {
  for (u64 seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    StmEngine e(unit_config(), /*htm=*/nullptr);
    SharedLines mem;

    e.begin(0);
    e.begin(1);
    std::vector<std::set<LineId>> written(2);
    // Six random shared accesses each, interleaved by coin flip. Slots are
    // spread over all four lines, so write sets sometimes collide and
    // sometimes do not.
    std::vector<u32> ops_left = {6, 6};
    while (ops_left[0] + ops_left[1] > 0) {
      u32 tid = static_cast<u32>(rng.next_below(2));
      if (ops_left[tid] == 0) tid = 1 - tid;
      --ops_left[tid];
      u64* addr = &mem.slots[rng.next_below(128)];
      const LineId line = reinterpret_cast<std::uintptr_t>(addr) / 256;
      if (rng.next_below(2) == 0) {
        e.store(tid, /*cpu=*/tid, addr, 100 * (tid + 1) + ops_left[tid],
                /*shared=*/true);
        written[tid].insert(line);
      } else {
        (void)e.load(tid, /*cpu=*/tid, addr, /*shared=*/true);
      }
    }
    const u32 first = static_cast<u32>(rng.next_below(2));
    const bool first_ok = e.commit(first, first) == StmAbortCause::kNone;
    const bool second_ok = e.commit(1 - first, 1 - first) ==
                           StmAbortCause::kNone;

    // With no third party, the first committer always validates.
    EXPECT_TRUE(first_ok) << "seed " << seed;
    bool overlap = false;
    for (LineId l : written[0]) overlap |= written[1].count(l) > 0;
    if (overlap) {
      EXPECT_FALSE(second_ok)
          << "seed " << seed
          << ": two writers of one line must never both commit";
      EXPECT_EQ(e.last_cause(1 - first), StmAbortCause::kValidation)
          << "seed " << seed;
    }
    EXPECT_EQ(e.stats().begins, 2u);
    EXPECT_EQ(e.stats().commits, second_ok ? 2u : 1u);
  }
}

// --- the lazy zombie hazard -------------------------------------------------

// A lazily-subscribed transaction keeps running while a non-transactional
// writer (a GIL holder, from the runtime's point of view) mutates memory.
// It can observe a torn two-word invariant — the hazard — but commit-time
// validation sees the stale read marker and refuses the commit.
TEST(StmUnit, LazyZombieObservesTornStateButCannotCommit) {
  StmConfig cfg = unit_config();
  cfg.subscription = GilSubscription::kLazy;
  StmEngine e(cfg, nullptr);
  u64 gil_word = 0;
  e.set_gil_word(&gil_word);
  SharedLines mem;
  u64* a = &mem.slots[0];   // line 0
  u64* b = &mem.slots[32];  // line 1
  *a = 5;
  *b = 5;  // invariant: *a == *b

  e.begin(0);
  const u64 read_a = e.load(0, 0, a, true);

  // The "GIL holder": writes both words non-transactionally, mid-span.
  gil_word = 1;
  *a = 6;
  e.on_nontx_write(a);
  *b = 6;
  e.on_nontx_write(b);
  gil_word = 0;

  const u64 read_b = e.load(0, 0, b, true);
  EXPECT_NE(read_a, read_b) << "the zombie really does see the torn pair";

  e.store(0, 0, a, read_a + read_b, true);
  EXPECT_EQ(e.commit(0, 0), StmAbortCause::kValidation)
      << "commit-time validation must contain the hazard";
  EXPECT_EQ(*a, 6u) << "the refused buffer must not publish";
  EXPECT_EQ(e.last_cause(0), StmAbortCause::kValidation);
  EXPECT_EQ(aborts_of(e, StmAbortCause::kValidation), 1u);
}

TEST(StmUnit, IncrementalValidationKillsTheZombieEarly) {
  StmConfig cfg = unit_config();
  cfg.subscription = GilSubscription::kLazy;
  StmEngine e(cfg, nullptr);
  SharedLines mem;
  e.begin(0);
  (void)e.load(0, 0, &mem.slots[0], true);
  EXPECT_TRUE(e.validate(0)) << "nothing invalidated yet";

  mem.slots[0] = 9;
  e.on_nontx_write(&mem.slots[0]);
  EXPECT_FALSE(e.validate(0)) << "yield-point validation must catch it";
  EXPECT_EQ(e.stats().zombie_kills, 1u);
  EXPECT_FALSE(e.in_tx(0)) << "validate rolls the transaction back";
}

TEST(StmUnit, LazyCommitRefusesWhileGilHeld) {
  StmConfig cfg = unit_config();
  cfg.subscription = GilSubscription::kLazy;
  StmEngine e(cfg, nullptr);
  u64 gil_word = 1;  // held for the whole span
  e.set_gil_word(&gil_word);
  SharedLines mem;
  e.begin(0);
  e.store(0, 0, &mem.slots[0], 7, true);
  EXPECT_EQ(e.commit(0, 0), StmAbortCause::kGilSubscription);
  EXPECT_EQ(mem.slots[0], 0u);
}

TEST(StmUnit, EagerSubscriptionDoomsAtAcquisition) {
  StmEngine e(unit_config(), nullptr);  // default subscription: eager
  SharedLines mem;
  e.begin(0);
  (void)e.load(0, 0, &mem.slots[0], true);
  e.on_gil_acquired();
  EXPECT_TRUE(e.doomed(0));
  EXPECT_THROW((void)e.load(0, 0, &mem.slots[1], true), htm::TxAbort);
  EXPECT_EQ(e.last_cause(0), StmAbortCause::kGilSubscription);

  // Lazy configuration ignores the acquisition signal entirely.
  StmConfig lazy = unit_config();
  lazy.subscription = GilSubscription::kLazy;
  StmEngine e2(lazy, nullptr);
  e2.begin(0);
  e2.on_gil_acquired();
  EXPECT_FALSE(e2.doomed(0));
}

// --- capacity ---------------------------------------------------------------

TEST(StmUnit, OverflowAbortsWithDedicatedCauses) {
  StmConfig cfg = unit_config();
  cfg.max_read_lines = 2;
  cfg.max_write_entries = 2;
  StmEngine e(cfg, nullptr);
  SharedLines mem;

  e.begin(0);
  (void)e.load(0, 0, &mem.slots[0], true);   // line 0
  (void)e.load(0, 0, &mem.slots[32], true);  // line 1
  EXPECT_THROW((void)e.load(0, 0, &mem.slots[64], true), htm::TxAbort);
  EXPECT_EQ(e.last_cause(0), StmAbortCause::kOverflowRead);

  e.begin(0);
  e.store(0, 0, &mem.slots[0], 1, true);
  e.store(0, 0, &mem.slots[1], 2, true);
  e.store(0, 0, &mem.slots[1], 3, true);  // same entry: no new slot
  EXPECT_THROW(e.store(0, 0, &mem.slots[2], 4, true), htm::TxAbort);
  EXPECT_EQ(e.last_cause(0), StmAbortCause::kOverflowWrite);
}

// --- engine level -----------------------------------------------------------

struct Observed {
  runtime::RunStats stats;
  obs::RunMetrics metrics;
  std::string trace;
};

Observed run_config(EngineConfig cfg, const std::string& src) {
  obs::ObsConfig oc;
  // Keyed by test name: ctest -j runs this suite's tests as concurrent
  // processes, and a shared path races (write / read-back / remove).
  oc.trace_path =
      ::testing::TempDir() + "stm_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      "_trace.jsonl";
  Observed o;
  {
    obs::Sink sink(oc);
    cfg.heap.initial_slots = 80'000;
    cfg.obs_sink = &sink;
    runtime::Engine engine(std::move(cfg));
    engine.load_program({src});
    o.stats = engine.run();
    sink.flush();
    o.metrics = sink.runs().at(0);
  }
  std::ifstream f(oc.trace_path);
  std::stringstream buf;
  buf << f.rdbuf();
  o.trace = buf.str();
  std::remove(oc.trace_path.c_str());
  return o;
}

// The differential guarantee: with the tier disabled (the default), every
// other --stm-* knob is inert — traces, metrics documents, and stats stay
// byte-identical, i.e. the seed behavior is preserved exactly.
TEST(StmEngineLevel, DisabledTierIsByteIdenticalToSeedBehavior) {
  u64 seed = 11;
  for (const htm::SystemProfile& profile :
       {htm::SystemProfile::zec12(), htm::SystemProfile::xeon_e3()}) {
    for (const bool htm_mode : {false, true}) {
      const std::string src = testutil::random_program(seed++);
      EngineConfig base = htm_mode ? EngineConfig::htm_dynamic(profile)
                                   : EngineConfig::gil(profile);
      const Observed plain = run_config(base, src);
      ASSERT_FALSE(plain.trace.empty());
      EXPECT_FALSE(plain.metrics.stm.any())
          << "a disabled tier must never report an stm metrics block";

      EngineConfig tweaked = base;
      tweaked.stm.enabled = false;  // the one knob that matters
      tweaked.stm.subscription = GilSubscription::kLazy;
      tweaked.stm.commit_retry_max = 9;
      tweaked.stm.slice_yields = 3;
      tweaked.stm.max_read_lines = 16;
      tweaked.stm.max_write_entries = 16;
      tweaked.stm.yield_validation = false;
      const Observed other = run_config(tweaked, src);

      const std::string tag = std::string(profile.machine.name) + "/" +
                              (htm_mode ? "HTM" : "GIL");
      EXPECT_EQ(other.stats.total_cycles, plain.stats.total_cycles) << tag;
      EXPECT_EQ(other.stats.results, plain.stats.results) << tag;
      EXPECT_EQ(other.trace, plain.trace)
          << tag << ": STM-off trace must be byte-identical";
      EXPECT_EQ(obs::metrics_to_json({other.metrics}),
                obs::metrics_to_json({plain.metrics}))
          << tag << ": STM-off metrics document must be byte-identical";
    }
  }
}

// Under a campaign that makes every TBEGIN fail persistently, the tier
// engages, keeps the program's results identical, and removes most of the
// serialized-on-GIL time the STM-off escalation pays.
TEST(StmEngineLevel, TierEngagesUnderPersistentAbortCampaign) {
  const htm::SystemProfile profile = htm::SystemProfile::zec12();
  const std::string src = testutil::random_program(23);

  EngineConfig off = EngineConfig::htm_dynamic(profile);
  off.fault.persistent_all_yps = true;
  const Observed off_run = run_config(off, src);

  const Observed gil_run = run_config(EngineConfig::gil(profile), src);
  EXPECT_EQ(off_run.stats.results, gil_run.stats.results);

  for (const GilSubscription sub :
       {GilSubscription::kEager, GilSubscription::kLazy}) {
    EngineConfig on = off;
    on.stm.enabled = true;
    on.stm.subscription = sub;
    const Observed r = run_config(on, src);
    const std::string tag = stm::gil_subscription_name(sub);

    EXPECT_EQ(r.stats.results, gil_run.stats.results)
        << tag << ": the tier must not change program results";
    EXPECT_GT(r.stats.stm_escalations, 0u) << tag;
    EXPECT_GT(r.stats.stm.commits, 0u) << tag;
    EXPECT_LT(r.stats.breakdown.gil_held, off_run.stats.breakdown.gil_held)
        << tag << ": STM must remove serialized-on-GIL time";
    EXPECT_TRUE(r.metrics.stm.any())
        << tag << ": the stm metrics block must be exported";
    EXPECT_EQ(r.metrics.stm.commits, r.stats.stm.commits) << tag;

    // Determinism: the identical configuration replays bit for bit.
    const Observed again = run_config(on, src);
    EXPECT_EQ(again.trace, r.trace) << tag << ": trace must be deterministic";
    EXPECT_EQ(again.stats.total_cycles, r.stats.total_cycles) << tag;
  }
}

// --- strict CLI -------------------------------------------------------------

void expect_rejected(const std::string& flag) {
  std::string arg = flag;
  std::vector<char*> argv = {const_cast<char*>("test"), arg.data()};
  CliFlags flags(static_cast<int>(argv.size()), argv.data(),
                 /*throw_errors=*/true);
  EXPECT_THROW(StmConfig::from_flags(flags), std::invalid_argument) << flag;
}

TEST(StmCli, EveryNewFlagRejectsBadValues) {
  expect_rejected("--gil-subscription=bogus");
  expect_rejected("--gil-subscription=");
  expect_rejected("--stm-commit-retry=0");
  expect_rejected("--stm-commit-retry=-1");
  expect_rejected("--stm-commit-retry=lots");
  expect_rejected("--stm-slice-yields=0");
  expect_rejected("--stm-max-read=0");
  expect_rejected("--stm-max-write=0");
  // Bool flags (--stm, --stm-yield-validation) follow the CliFlags
  // convention: false/0/no mean false, anything else true — same as every
  // other bool flag in the repo, so no strictness test for those.
}

TEST(StmCli, GoodValuesParseIntoTheConfig) {
  std::vector<std::string> args = {
      "test",          "--stm",          "--gil-subscription=lazy",
      "--stm-commit-retry=7", "--stm-slice-yields=12",
      "--stm-max-read=64",    "--stm-max-write=48",
      "--stm-yield-validation=false"};
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  CliFlags flags(static_cast<int>(argv.size()), argv.data(),
                 /*throw_errors=*/true);
  const StmConfig c = StmConfig::from_flags(flags);
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.subscription, GilSubscription::kLazy);
  EXPECT_EQ(c.commit_retry_max, 7u);
  EXPECT_EQ(c.slice_yields, 12u);
  EXPECT_EQ(c.max_read_lines, 64u);
  EXPECT_EQ(c.max_write_entries, 48u);
  EXPECT_FALSE(c.yield_validation);
}

}  // namespace
}  // namespace gilfree
