// Differential test suite for open-loop httpsim at scale (the cube pattern
// of test_interp_modes, applied to the server simulation): over machine
// profiles {zEC12, Xeon E3} × engines {GIL, HTM-dynamic} × shard counts
// {1, 2, 4} × arrival processes {poisson, mmpp, closed},
//
//   - the same seed reproduces the run byte-for-byte: request log, trace
//     file, metrics document, and percentile histograms,
//   - the production run_sharded() result equals an independent
//     sharded-but-serialized reference that partitions the same load by
//     hand and runs the shard engines in reverse order (shard isolation /
//     execution-order independence),
//   - --shards=1 is identical to the plain unsharded run_server() path
//     (including the HTM facility's (seed, shard 0) RNG derivation).
#include <gtest/gtest.h>

#include <string>

#include "htm/profile.hpp"
#include "httpsim/bench_server.hpp"
#include "httpsim/server_programs.hpp"
#include "runtime/engine.hpp"
#include "testutil_httpsim.hpp"

namespace gilfree {
namespace {

using httpsim::Arrival;
using httpsim::DriverConfig;
using httpsim::ShardOptions;
using runtime::EngineConfig;
using testutil::HttpObserved;
using testutil::ReferenceResult;
using testutil::run_observed;
using testutil::run_serialized_reference;

DriverConfig small_load(Arrival arrival) {
  DriverConfig d;
  d.arrival = arrival;
  d.clients = 4;
  d.total_requests = 96;
  d.rps = 200'000.0;  // open loop: brisk but below collapse
  d.burst_factor = 6.0;
  d.burst_on = 400'000;
  d.burst_off = 1'200'000;
  d.queue_limit = 64;
  d.churn = 0.25;
  return d;
}

/// One profile × engine cell of the cube: for every shard count and arrival
/// process, same-seed determinism and serialized-reference equality.
void run_cell(const EngineConfig& base, const std::string& tag) {
  const std::string program = httpsim::webrick_source();
  for (const Arrival arrival :
       {Arrival::kClosed, Arrival::kPoisson, Arrival::kMmpp}) {
    const DriverConfig d = small_load(arrival);
    for (const u32 shards : {1u, 2u, 4u}) {
      ShardOptions so;
      so.shards = shards;
      so.router = httpsim::Router::kHash;
      const std::string label = tag + "/" +
                                std::string(httpsim::arrival_name(arrival)) +
                                "/shards=" + std::to_string(shards);

      const HttpObserved a = run_observed(base, program, d, so, tag);
      const HttpObserved b = run_observed(base, program, d, so, tag);
      ASSERT_FALSE(a.trace.empty()) << label;
      EXPECT_EQ(a.result.request_log, b.result.request_log)
          << label << ": same seed must give a byte-identical request log";
      EXPECT_EQ(a.trace, b.trace)
          << label << ": same seed must give a byte-identical trace";
      EXPECT_EQ(a.metrics, b.metrics)
          << label << ": same seed must give identical metrics documents";
      EXPECT_EQ(a.result.latency_hist.to_sparse_string(),
                b.result.latency_hist.to_sparse_string())
          << label;

      // Every scheduled request is accounted for, exactly once.
      EXPECT_EQ(a.result.completed + a.result.dropped, d.total_requests)
          << label;

      const ReferenceResult ref =
          run_serialized_reference(base, program, d, so);
      EXPECT_EQ(a.result.request_log, ref.request_log)
          << label << ": reverse-order serialized reference diverged";
      EXPECT_EQ(a.result.completed, ref.completed) << label;
      EXPECT_EQ(a.result.dropped, ref.dropped) << label;
      EXPECT_EQ(a.result.latency_hist.to_sparse_string(),
                ref.latency_hist.to_sparse_string())
          << label << ": merged percentile histograms diverged";
      EXPECT_EQ(a.result.queue_hist.to_sparse_string(),
                ref.queue_hist.to_sparse_string())
          << label;
      for (u32 s = 0; s < shards; ++s) {
        EXPECT_EQ(a.result.shards[s].stats.total_cycles,
                  ref.stats[s].total_cycles)
            << label << " shard " << s;
        EXPECT_EQ(a.result.shards[s].stats.insns_retired,
                  ref.stats[s].insns_retired)
            << label << " shard " << s;
      }
    }
  }
}

TEST(HttpsimModes, GilZec12Cube) {
  run_cell(EngineConfig::gil(htm::SystemProfile::zec12()), "gil-zec12");
}

TEST(HttpsimModes, GilXeonCube) {
  run_cell(EngineConfig::gil(htm::SystemProfile::xeon_e3()), "gil-xeon");
}

TEST(HttpsimModes, HtmZec12Cube) {
  run_cell(EngineConfig::htm_dynamic(htm::SystemProfile::zec12()),
           "htm-zec12");
}

TEST(HttpsimModes, HtmXeonCube) {
  run_cell(EngineConfig::htm_dynamic(htm::SystemProfile::xeon_e3()),
           "htm-xeon");
}

TEST(HttpsimModes, SingleShardMatchesUnshardedRunServer) {
  // --shards=1 must be the unsharded simulation bit-for-bit: same request
  // log, same engine totals, same percentile histogram. This covers the
  // HtmConfig::shard_id = 0 RNG-derivation identity end to end.
  const std::string program = httpsim::webrick_source();
  for (const Arrival arrival : {Arrival::kClosed, Arrival::kPoisson}) {
    const DriverConfig d = small_load(arrival);
    for (const bool htm_mode : {false, true}) {
      const auto profile = htm::SystemProfile::zec12();
      const EngineConfig base = htm_mode ? EngineConfig::htm_dynamic(profile)
                                         : EngineConfig::gil(profile);
      const std::string label =
          std::string(httpsim::arrival_name(arrival)) +
          (htm_mode ? "/HTM" : "/GIL");

      const auto unsharded = httpsim::run_server(base, program, d);
      ShardOptions so;
      so.shards = 1;
      const auto sharded = httpsim::run_sharded(base, program, d, so);
      ASSERT_EQ(sharded.shards.size(), 1u) << label;
      EXPECT_EQ(sharded.request_log, unsharded.request_log) << label;
      EXPECT_EQ(sharded.shards[0].stats.total_cycles,
                unsharded.stats.total_cycles)
          << label;
      EXPECT_EQ(sharded.shards[0].stats.insns_retired,
                unsharded.stats.insns_retired)
          << label;
      EXPECT_EQ(sharded.latency_hist.to_sparse_string(),
                unsharded.latency_hist.to_sparse_string())
          << label;
      EXPECT_EQ(sharded.completed, unsharded.completed) << label;
    }
  }
}

TEST(HttpsimModes, RouterPartitionsEveryRequestExactlyOnce) {
  DriverConfig d = small_load(Arrival::kPoisson);
  d.total_requests = 500;
  const auto schedule = httpsim::make_schedule(d, 5.5);
  ASSERT_EQ(schedule.size(), 500u);
  for (const httpsim::Router router :
       {httpsim::Router::kHash, httpsim::Router::kRoundRobin}) {
    for (const u32 shards : {1u, 2u, 4u, 7u}) {
      std::vector<u32> counts(shards, 0);
      for (const auto& r : schedule) {
        const u32 s = httpsim::route_request(router, r.id, shards, d.seed);
        ASSERT_LT(s, shards);
        ++counts[s];
      }
      u64 total = 0;
      for (u32 c : counts) total += c;
      EXPECT_EQ(total, schedule.size());
      if (router == httpsim::Router::kRoundRobin) {
        // Perfectly balanced by construction.
        for (u32 c : counts) {
          EXPECT_GE(c, schedule.size() / shards);
          EXPECT_LE(c, schedule.size() / shards + 1);
        }
      }
    }
  }
}

}  // namespace
}  // namespace gilfree
