// Heap, allocator, and GC unit tests: free-list bulk splice, spill size
// classes, mark & sweep reachability, heap growth, region classification.
#include <gtest/gtest.h>

#include "vm/heap.hpp"
#include "vm/objops.hpp"

namespace gilfree::vm {
namespace {

/// Direct-memory host: no transactions, no cycle accounting.
class DirectHost : public Host {
 public:
  u64 mem_load(const u64* p, bool) override { return *p; }
  void mem_store(u64* p, u64 v, bool) override { *p = v; }
  void charge(Cycles c) override { charged += c; }
  void require_nontx(const char*) override {}
  void full_gc() override {
    ++gc_calls;
    if (heap != nullptr) heap->run_gc(roots);
  }
  u32 current_tid() override { return tid; }
  Value spawn_thread(Value, std::vector<Value>) override {
    return Value::nil();
  }
  bool thread_finished(u32) override { return true; }
  void write_stdout(std::string_view) override {}
  u64 random_u64() override { return 4; }
  void record_result(std::string_view, double) override {}
  Cycles now_cycles() override { return 0; }

  Heap* heap = nullptr;
  Heap::RootSet roots;
  u32 tid = 0;
  u64 gc_calls = 0;
  Cycles charged = 0;
};

HeapConfig small_config() {
  HeapConfig c;
  c.initial_slots = 2048;
  c.block_slots = 1024;
  c.max_threads = 4;
  return c;
}

TEST(Heap, AllocatesDistinctAlignedObjects) {
  Heap heap(small_config());
  DirectHost host;
  host.heap = &heap;
  RBasic* a = heap.alloc_rvalue(host, ObjType::kObject, kClassObject);
  RBasic* b = heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(a->type(), ObjType::kObject);
  EXPECT_EQ(b->klass(), kClassFloat);
  EXPECT_TRUE(heap.is_heap_object(a));
  EXPECT_FALSE(heap.is_heap_object(&host));
}

TEST(Heap, ThreadLocalRefillSplicesInBulk) {
  auto cfg = small_config();
  cfg.free_list_refill = 16;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  const u64 before = *heap.global_free_count();
  (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_EQ(*heap.global_free_count(), before - 16);
  EXPECT_EQ(*heap.tcb_slot(0, kTcbFreeListCount), 15u);
  // Next 15 allocations never touch the global list.
  for (int i = 0; i < 15; ++i)
    (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_EQ(*heap.global_free_count(), before - 16);
  EXPECT_EQ(*heap.tcb_slot(0, kTcbFreeListCount), 0u);
}

TEST(Heap, GlobalListModeAllocates) {
  auto cfg = small_config();
  cfg.thread_local_free_lists = false;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  const u64 before = *heap.global_free_count();
  (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_EQ(*heap.global_free_count(), before - 1);
}

TEST(Heap, SpillSizeClassesRoundUp) {
  auto cfg = small_config();
  cfg.thread_local_malloc = false;  // direct reuse via the global lists
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  const u64 tiny = heap.alloc_spill(host, 1);
  EXPECT_GE(Heap::spill_capacity_slots(tiny), 1u);
  const u64 mid = heap.alloc_spill(host, 100);
  EXPECT_GE(Heap::spill_capacity_slots(mid), 100u);
  const u64 big = heap.alloc_spill(host, 40'000);
  EXPECT_GE(Heap::spill_capacity_slots(big), 40'000u);
  // Freed chunks are reused.
  heap.free_spill(host, mid);
  const u64 again = heap.alloc_spill(host, 100);
  EXPECT_EQ(again, mid);
}

TEST(Heap, GcFreesGarbageKeepsReachable) {
  Heap heap(small_config());
  DirectHost host;
  host.heap = &heap;
  const Value kept = heap.new_array(host, 4);
  objops::array_push(host, heap, kept.obj(), heap.new_float(host, 1.5));
  for (int i = 0; i < 100; ++i) (void)heap.new_float(host, i);

  host.roots.values.push_back(kept);
  const u64 free_before = heap.free_objects();
  heap.run_gc(host.roots);
  EXPECT_GT(heap.free_objects(), free_before);
  EXPECT_EQ(heap.gc_stats().last_marked, 2u);  // array + its float
  // The kept structure is intact.
  EXPECT_DOUBLE_EQ(
      objops::value_to_double(host,
                              objops::array_get(host, kept.obj(), 0)),
      1.5);
}

TEST(Heap, GcTracesHashesRangesObjectsAndFreesSpills) {
  Heap heap(small_config());
  DirectHost host;
  host.heap = &heap;
  const Value h = heap.new_hash(host);
  const Value key = heap.new_string(host, "k");
  const Value val = heap.new_float(host, 9.0);
  objops::hash_set(host, heap, h.obj(), key, val);
  const Value r = heap.new_range(host, Value::fixnum(1), val, false);
  const u64 spill_before = heap.spill_slots_allocated();
  (void)heap.new_string(host, "garbage string with its own spill buffer");

  host.roots.values.push_back(h);
  host.roots.values.push_back(r);
  heap.run_gc(host.roots);
  // hash + key string + float + range survive.
  EXPECT_EQ(heap.gc_stats().last_marked, 4u);
  EXPECT_TRUE(objops::value_eq(
      host, objops::hash_get(host, h.obj(), key), val));
  (void)spill_before;
}

TEST(Heap, ConservativeRangeScanRootsStackSlots) {
  Heap heap(small_config());
  DirectHost host;
  host.heap = &heap;
  const Value f = heap.new_float(host, 3.5);
  u64 fake_stack[4] = {Value::fixnum(1).bits(), f.bits(), 0, 0xdeadbeef};
  host.roots.ranges.emplace_back(fake_stack, 4);
  heap.run_gc(host.roots);
  EXPECT_EQ(heap.gc_stats().last_marked, 1u);
  EXPECT_DOUBLE_EQ(objops::value_to_double(host, f), 3.5);
}

TEST(Heap, GrowsWhenFullAndAllocationSucceeds) {
  auto cfg = small_config();
  cfg.initial_slots = 1024;
  cfg.growth_trigger = 0.3;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  // Keep everything alive so GC must grow the arena.
  const Value arr = heap.new_array(host, 8);
  host.roots.values.push_back(arr);
  const u64 total_before = heap.total_objects();
  for (int i = 0; i < 3000; ++i)
    objops::array_push(host, heap, arr.obj(), heap.new_float(host, i));
  EXPECT_GT(heap.total_objects(), total_before);
  EXPECT_GT(host.gc_calls, 0u);
  EXPECT_DOUBLE_EQ(
      objops::value_to_double(host,
                              objops::array_get(host, arr.obj(), 2999)),
      2999.0);
}

TEST(Heap, DescribeAddressClassifiesRegions) {
  Heap heap(small_config());
  DirectHost host;
  host.heap = &heap;
  EXPECT_EQ(heap.describe_address(heap.gil_word()), "gil-word");
  EXPECT_EQ(heap.describe_address(heap.global_free_head()),
            "free-list-head");
  EXPECT_EQ(heap.describe_address(heap.tcb_slot(1, kTcbYieldCounter)),
            "tcb");
  EXPECT_EQ(heap.describe_address(heap.ic_slot(0, 0)), "inline-caches");
  RBasic* o = heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_EQ(heap.describe_address(o), "arena");
  const u64 spill = heap.alloc_spill(host, 8);
  EXPECT_EQ(heap.describe_address(spill_ptr(spill)), "spill");
  int local = 0;
  EXPECT_EQ(heap.describe_address(&local), "other");
}

TEST(Heap, PaddingChangesTcbStride) {
  auto padded_cfg = small_config();
  padded_cfg.padded_thread_structs = true;
  Heap padded(padded_cfg);
  auto packed_cfg = small_config();
  packed_cfg.padded_thread_structs = false;
  Heap packed(packed_cfg);

  const auto dist = [](Heap& h) {
    return reinterpret_cast<std::uintptr_t>(h.tcb_slot(1, 0)) -
           reinterpret_cast<std::uintptr_t>(h.tcb_slot(0, 0));
  };
  EXPECT_GE(dist(padded), 256u) << "padded TCBs get whole zEC12 lines";
  EXPECT_LT(dist(packed), 256u) << "packed TCBs share lines (false sharing)";
}

}  // namespace
}  // namespace gilfree::vm
