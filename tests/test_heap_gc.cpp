// Heap, allocator, and GC unit tests: free-list bulk splice, spill size
// classes, mark & sweep reachability, heap growth, region classification,
// per-thread arena carving/conservation, sweep-deal line invariants, lazy
// incremental sweeping, the generational nursery (promotion, conservation,
// write barrier), incremental marking, stash stealing, and a
// trace-differential test pinning the default configuration to the seed
// allocator's behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "obs/sink.hpp"
#include "runtime/engine.hpp"
#include "testutil_programs.hpp"
#include "vm/heap.hpp"
#include "vm/objops.hpp"

namespace gilfree::vm {
namespace {

/// Direct-memory host: no transactions, no cycle accounting.
class DirectHost : public Host {
 public:
  u64 mem_load(const u64* p, bool) override { return *p; }
  void mem_store(u64* p, u64 v, bool) override { *p = v; }
  void charge(Cycles c) override { charged += c; }
  void require_nontx(const char*) override {}
  void full_gc() override {
    ++gc_calls;
    if (heap != nullptr) heap->run_gc(roots);
  }
  void minor_gc() override {
    ++minor_calls;
    if (heap != nullptr) heap->run_minor_gc(*this, roots);
  }
  void collect_gc_roots(GcRootSet& r) override { r = roots; }
  bool in_speculation() override { return speculating; }
  u32 current_tid() override { return tid; }
  Value spawn_thread(Value, std::vector<Value>) override {
    return Value::nil();
  }
  bool thread_finished(u32) override { return true; }
  void write_stdout(std::string_view) override {}
  u64 random_u64() override { return 4; }
  void record_result(std::string_view, double) override {}
  Cycles now_cycles() override { return now; }

  Heap* heap = nullptr;
  Heap::RootSet roots;
  u32 tid = 0;
  u64 gc_calls = 0;
  u64 minor_calls = 0;
  bool speculating = false;
  Cycles charged = 0;
  Cycles now = 0;
};

HeapConfig small_config() {
  HeapConfig c;
  c.initial_slots = 2048;
  c.block_slots = 1024;
  c.max_threads = 4;
  return c;
}

TEST(Heap, AllocatesDistinctAlignedObjects) {
  Heap heap(small_config());
  DirectHost host;
  host.heap = &heap;
  RBasic* a = heap.alloc_rvalue(host, ObjType::kObject, kClassObject);
  RBasic* b = heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(a->type(), ObjType::kObject);
  EXPECT_EQ(b->klass(), kClassFloat);
  EXPECT_TRUE(heap.is_heap_object(a));
  EXPECT_FALSE(heap.is_heap_object(&host));
}

TEST(Heap, ThreadLocalRefillSplicesInBulk) {
  auto cfg = small_config();
  cfg.free_list_refill = 16;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  const u64 before = *heap.global_free_count();
  (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_EQ(*heap.global_free_count(), before - 16);
  EXPECT_EQ(*heap.tcb_slot(0, kTcbFreeListCount), 15u);
  // Next 15 allocations never touch the global list.
  for (int i = 0; i < 15; ++i)
    (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_EQ(*heap.global_free_count(), before - 16);
  EXPECT_EQ(*heap.tcb_slot(0, kTcbFreeListCount), 0u);
}

TEST(Heap, GlobalListModeAllocates) {
  auto cfg = small_config();
  cfg.thread_local_free_lists = false;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  const u64 before = *heap.global_free_count();
  (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_EQ(*heap.global_free_count(), before - 1);
}

TEST(Heap, SpillSizeClassesRoundUp) {
  auto cfg = small_config();
  cfg.thread_local_malloc = false;  // direct reuse via the global lists
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  const u64 tiny = heap.alloc_spill(host, 1);
  EXPECT_GE(Heap::spill_capacity_slots(tiny), 1u);
  const u64 mid = heap.alloc_spill(host, 100);
  EXPECT_GE(Heap::spill_capacity_slots(mid), 100u);
  const u64 big = heap.alloc_spill(host, 40'000);
  EXPECT_GE(Heap::spill_capacity_slots(big), 40'000u);
  // Freed chunks are reused.
  heap.free_spill(host, mid);
  const u64 again = heap.alloc_spill(host, 100);
  EXPECT_EQ(again, mid);
}

TEST(Heap, GcFreesGarbageKeepsReachable) {
  Heap heap(small_config());
  DirectHost host;
  host.heap = &heap;
  const Value kept = heap.new_array(host, 4);
  objops::array_push(host, heap, kept.obj(), heap.new_float(host, 1.5));
  for (int i = 0; i < 100; ++i) (void)heap.new_float(host, i);

  host.roots.values.push_back(kept);
  const u64 free_before = heap.free_objects();
  heap.run_gc(host.roots);
  EXPECT_GT(heap.free_objects(), free_before);
  EXPECT_EQ(heap.gc_stats().last_marked, 2u);  // array + its float
  // The kept structure is intact.
  EXPECT_DOUBLE_EQ(
      objops::value_to_double(host,
                              objops::array_get(host, kept.obj(), 0)),
      1.5);
}

TEST(Heap, GcTracesHashesRangesObjectsAndFreesSpills) {
  Heap heap(small_config());
  DirectHost host;
  host.heap = &heap;
  const Value h = heap.new_hash(host);
  const Value key = heap.new_string(host, "k");
  const Value val = heap.new_float(host, 9.0);
  objops::hash_set(host, heap, h.obj(), key, val);
  const Value r = heap.new_range(host, Value::fixnum(1), val, false);
  const u64 spill_before = heap.spill_slots_allocated();
  (void)heap.new_string(host, "garbage string with its own spill buffer");

  host.roots.values.push_back(h);
  host.roots.values.push_back(r);
  heap.run_gc(host.roots);
  // hash + key string + float + range survive.
  EXPECT_EQ(heap.gc_stats().last_marked, 4u);
  EXPECT_TRUE(objops::value_eq(
      host, objops::hash_get(host, h.obj(), key), val));
  (void)spill_before;
}

TEST(Heap, ConservativeRangeScanRootsStackSlots) {
  Heap heap(small_config());
  DirectHost host;
  host.heap = &heap;
  const Value f = heap.new_float(host, 3.5);
  u64 fake_stack[4] = {Value::fixnum(1).bits(), f.bits(), 0, 0xdeadbeef};
  host.roots.ranges.emplace_back(fake_stack, 4);
  heap.run_gc(host.roots);
  EXPECT_EQ(heap.gc_stats().last_marked, 1u);
  EXPECT_DOUBLE_EQ(objops::value_to_double(host, f), 3.5);
}

TEST(Heap, GrowsWhenFullAndAllocationSucceeds) {
  auto cfg = small_config();
  cfg.initial_slots = 1024;
  cfg.growth_trigger = 0.3;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  // Keep everything alive so GC must grow the arena.
  const Value arr = heap.new_array(host, 8);
  host.roots.values.push_back(arr);
  const u64 total_before = heap.total_objects();
  for (int i = 0; i < 3000; ++i)
    objops::array_push(host, heap, arr.obj(), heap.new_float(host, i));
  EXPECT_GT(heap.total_objects(), total_before);
  EXPECT_GT(host.gc_calls, 0u);
  EXPECT_DOUBLE_EQ(
      objops::value_to_double(host,
                              objops::array_get(host, arr.obj(), 2999)),
      2999.0);
}

TEST(Heap, DescribeAddressClassifiesRegions) {
  Heap heap(small_config());
  DirectHost host;
  host.heap = &heap;
  EXPECT_EQ(heap.describe_address(heap.gil_word()), "gil-word");
  EXPECT_EQ(heap.describe_address(heap.global_free_head()),
            "free-list-head");
  EXPECT_EQ(heap.describe_address(heap.tcb_slot(1, kTcbYieldCounter)),
            "tcb");
  EXPECT_EQ(heap.describe_address(heap.ic_slot(0, 0)), "inline-caches");
  RBasic* o = heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_EQ(heap.describe_address(o), "arena");
  const u64 spill = heap.alloc_spill(host, 8);
  EXPECT_EQ(heap.describe_address(spill_ptr(spill)), "spill");
  int local = 0;
  EXPECT_EQ(heap.describe_address(&local), "other");
}

HeapConfig arena_config() {
  HeapConfig c = small_config();
  c.per_thread_arenas = true;
  c.arena_min_segment = 8;
  c.arena_max_segment = 64;
  return c;
}

/// Property: across refills, segment carving, stash activation, GC, and
/// (optionally) lazy sweep quanta, no RVALUE slot is lost or duplicated —
/// after a GC that frees everything, exactly total_objects() allocations
/// succeed without another collection, and they are all distinct.
void check_arena_conservation(bool lazy) {
  HeapConfig cfg = arena_config();
  cfg.lazy_sweep = lazy;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;

  // Touch the allocator from several threads first so segments, stashes,
  // and local lists are in play, then free everything.
  for (int i = 0; i < 600; ++i) {
    host.tid = static_cast<u32>(i) % cfg.max_threads;
    (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  }
  heap.run_gc(host.roots);  // no roots: everything is garbage

  const u64 total = heap.total_objects();
  if (!lazy) {
    EXPECT_EQ(heap.free_objects(), total);
  }

  host.tid = 0;
  const u64 gc_before = host.gc_calls;
  std::set<const RBasic*> seen;
  for (u64 i = 0; i < total; ++i) {
    RBasic* o = heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
    ASSERT_TRUE(heap.is_heap_object(o));
    ASSERT_TRUE(seen.insert(o).second)
        << "slot handed out twice at allocation " << i;
  }
  EXPECT_EQ(host.gc_calls, gc_before)
      << "re-allocating every freed slot must not need another GC";
  EXPECT_EQ(heap.free_objects(), 0u);
  EXPECT_EQ(heap.lazy_blocks_pending(), 0u);
}

TEST(HeapArena, ConservesSlotsAcrossRefillAndGc) {
  check_arena_conservation(/*lazy=*/false);
}

TEST(HeapArena, ConservesSlotsAcrossRefillAndLazySweep) {
  check_arena_conservation(/*lazy=*/true);
}

TEST(HeapArena, SegmentSizeAdaptsToAllocationRate) {
  HeapConfig cfg = arena_config();
  cfg.arena_hot_refill_cycles = 1'000;
  cfg.arena_idle_cycles = 10'000;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;

  EXPECT_EQ(heap.arena_segment_size(0), cfg.arena_min_segment);
  // Back-to-back refills (virtual time frozen): every carve looks hot, so
  // the segment doubles up to the cap.
  for (int i = 0; i < 150; ++i)
    (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_EQ(heap.arena_segment_size(0), cfg.arena_max_segment);
  EXPECT_GE(heap.gc_stats().arena_grows, 3u);

  // An idle gap attenuates the next carve.
  const u64 shrinks_before = heap.gc_stats().arena_shrinks;
  host.now = 1'000'000;
  for (int i = 0; i < static_cast<int>(cfg.arena_max_segment) + 1; ++i)
    (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_GT(heap.gc_stats().arena_shrinks, shrinks_before);
}

TEST(HeapArena, DescribeAddressClassifiesThreadSegments) {
  Heap heap(arena_config());
  DirectHost host;
  host.heap = &heap;
  EXPECT_EQ(heap.describe_address(heap.arena_pool_head()), "arena-pool");
  host.tid = 2;
  RBasic* o = heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_EQ(heap.describe_address(o), "arena-t2");
  host.tid = 0;
  RBasic* p = heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  EXPECT_EQ(heap.describe_address(p), "arena-t0");
}

/// Walks every dealt free list and asserts no cache line's RVALUEs are
/// split across two threads' lists (the false-sharing caveat the line-mate
/// deal and the line-aligned round-robin fallback both fix).
void check_no_line_split(Heap& heap, u32 deal_threads) {
  std::map<u64, u32> line_to_thread;
  u64 dealt = 0;
  for (u32 t = 0; t < deal_threads; ++t) {
    u64 head = *heap.tcb_slot(t, kTcbFreeListHead);
    while (head != 0) {
      const u64 line = head / 256;  // worst-case (zEC12) line
      auto [it, fresh] = line_to_thread.emplace(line, t);
      ASSERT_TRUE(fresh || it->second == t)
          << "line " << line << " split between threads " << it->second
          << " and " << t;
      ++dealt;
      head = reinterpret_cast<RBasic*>(head)->slots[1];
    }
  }
  EXPECT_GT(dealt, 0u);
}

TEST(HeapSweepDeal, LineMateDealKeepsLineMatesTogether) {
  HeapConfig cfg = small_config();
  cfg.sweep_deal_threads = 3;
  cfg.sweep_deal_policy = HeapConfig::SweepDeal::kLineMate;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  for (int i = 0; i < 900; ++i) {
    host.tid = static_cast<u32>(i / 300);  // three owner phases
    (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  }
  heap.run_gc(host.roots);
  EXPECT_EQ(*heap.global_free_count(), 0u) << "dealing bypasses the global list";
  check_no_line_split(heap, cfg.sweep_deal_threads);
}

TEST(HeapSweepDeal, RoundRobinDealIsLineAligned) {
  HeapConfig cfg = small_config();
  cfg.sweep_deal_threads = 2;
  cfg.sweep_deal_policy = HeapConfig::SweepDeal::kRoundRobin;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  for (int i = 0; i < 600; ++i)
    (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  heap.run_gc(host.roots);
  check_no_line_split(heap, cfg.sweep_deal_threads);
}

TEST(HeapLazySweep, ShrinksPauseAndSweepsOnSlowPaths) {
  auto run = [](bool lazy) {
    HeapConfig cfg = small_config();
    cfg.lazy_sweep = lazy;
    Heap heap(cfg);
    DirectHost host;
    host.heap = &heap;
    for (int i = 0; i < 5000; ++i)
      (void)heap.new_float(host, i);  // garbage; forces collections
    return std::pair<Cycles, GcStats>(heap.gc_stats().max_pause,
                                      heap.gc_stats());
  };
  const auto [eager_pause, eager_stats] = run(false);
  const auto [lazy_pause, lazy_stats] = run(true);
  ASSERT_GT(eager_stats.collections, 0u);
  ASSERT_GT(lazy_stats.collections, 0u);
  EXPECT_LT(lazy_pause, eager_pause)
      << "mark-only stop-the-world must beat mark+sweep";
  EXPECT_GT(lazy_stats.sweep_quanta, 0u);
  EXPECT_GT(lazy_stats.sweep_quantum_cycles, 0u);
  // Both modes account every pause in the histogram.
  EXPECT_EQ(eager_stats.pause_hist.total(), eager_stats.collections);
  EXPECT_EQ(lazy_stats.pause_hist.total(), lazy_stats.collections);
}

// ---------------------------------------------------------------------------
// Generational nursery, incremental marking, and stash stealing
// ---------------------------------------------------------------------------

HeapConfig nursery_config() {
  HeapConfig c = arena_config();
  c.nursery = true;
  c.nursery_slots = 64;
  return c;
}

TEST(HeapNursery, MinorGcPromotesSurvivorsAndRecyclesDead) {
  Heap heap(nursery_config());
  DirectHost host;
  host.heap = &heap;
  const Value kept = heap.new_float(host, 3.5);
  host.roots.values.push_back(kept);
  EXPECT_EQ(heap.describe_address(kept.obj()), "nursery-t0");
  for (int i = 0; i < 80; ++i) (void)heap.new_float(host, i);  // garbage
  ASSERT_GE(host.minor_calls, 1u);
  EXPECT_EQ(host.gc_calls, 0u) << "minor collections must not need a major";
  EXPECT_GE(heap.gc_stats().minor_collections, 1u);
  EXPECT_GE(heap.gc_stats().nursery_promoted, 1u);
  EXPECT_GT(heap.gc_stats().nursery_freed, 0u);
  // Promotion clears the young bit in place: the survivor's address did not
  // move and the slot now classifies as plain arena space.
  EXPECT_EQ(heap.describe_address(kept.obj()), "arena-t0");
  EXPECT_DOUBLE_EQ(objops::value_to_double(host, kept), 3.5);
  // Minor pauses land in the same histogram as major ones.
  EXPECT_EQ(heap.gc_stats().pause_hist.total(),
            heap.gc_stats().minor_collections);
}

/// Property: with the nursery on, minor collections never lose or duplicate
/// an RVALUE slot — after a major GC frees everything, exactly
/// total_objects() rooted allocations succeed, all distinct, without
/// another major collection.
void check_nursery_conservation(bool lazy) {
  HeapConfig cfg = nursery_config();
  cfg.lazy_sweep = lazy;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;

  for (int i = 0; i < 600; ++i) {
    host.tid = static_cast<u32>(i) % cfg.max_threads;
    (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
  }
  heap.run_gc(host.roots);  // no roots: everything is garbage

  const u64 total = heap.total_objects();
  host.tid = 0;
  const u64 gc_before = host.gc_calls;
  std::set<const RBasic*> seen;
  for (u64 i = 0; i < total; ++i) {
    // Root every allocation so the interleaved minor collections promote
    // instead of recycling (recycling would legitimately reuse slots and
    // break the distinctness check).
    const Value v = heap.new_float(host, static_cast<double>(i));
    host.roots.values.push_back(v);
    ASSERT_TRUE(heap.is_heap_object(v.obj()));
    ASSERT_TRUE(seen.insert(v.obj()).second)
        << "slot handed out twice at allocation " << i;
  }
  EXPECT_EQ(host.gc_calls, gc_before)
      << "re-allocating every freed slot must not need a major GC";
  EXPECT_GT(host.minor_calls, 0u);
  EXPECT_EQ(heap.free_objects(), 0u);
  EXPECT_EQ(heap.lazy_blocks_pending(), 0u);
}

TEST(HeapNursery, ConservesSlotsAcrossMinorGcs) {
  check_nursery_conservation(/*lazy=*/false);
}

TEST(HeapNursery, ConservesSlotsAcrossMinorGcsWithLazySweep) {
  check_nursery_conservation(/*lazy=*/true);
}

TEST(HeapNursery, WriteBarrierKeepsOldToYoungEdgeAlive) {
  Heap heap(nursery_config());
  DirectHost host;
  host.heap = &heap;
  const Value arr = heap.new_array(host, 4);
  host.roots.values.push_back(arr);
  for (int i = 0; i < 80; ++i) (void)heap.new_float(host, i);
  ASSERT_GE(host.minor_calls, 1u);
  ASSERT_EQ(heap.describe_address(arr.obj()), "arena-t0") << "not promoted";

  // Store a young float into the now-old array. It is reachable through
  // nothing else, so only the remembered set can carry it across the next
  // minor collection.
  const Value young = heap.new_float(host, 7.5);
  objops::array_set(host, heap, arr.obj(), 0, young);
  const u64 freed_before = heap.gc_stats().nursery_freed;
  const u64 minors_before = heap.gc_stats().minor_collections;
  for (int i = 0; i < 80; ++i) (void)heap.new_float(host, i);  // garbage
  ASSERT_GT(heap.gc_stats().minor_collections, minors_before);
  EXPECT_GT(heap.gc_stats().nursery_freed, freed_before)
      << "the garbage floats must still be recycled";
  EXPECT_EQ(young.obj()->type(), ObjType::kFloat)
      << "old→young edge lost: the child was swept";
  EXPECT_DOUBLE_EQ(
      objops::value_to_double(host, objops::array_get(host, arr.obj(), 0)),
      7.5);
}

TEST(HeapIncrementalMark, BarrierRegreysStoresIntoTracedObjects) {
  HeapConfig cfg = arena_config();
  cfg.mark_quantum = 1;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  const Value arr = heap.new_array(host, 4);
  host.roots.values.push_back(arr);

  // Fill past half the heap so a refill slow path starts the epoch, then
  // keep allocating until the grey stack drains (arr is black now).
  int guard = 0;
  while (!(heap.mark_epoch_active() && heap.mark_grey_size() == 0)) {
    (void)heap.new_float(host, guard);
    ASSERT_LT(++guard, 4000) << "mark epoch never started or never drained";
    ASSERT_EQ(host.gc_calls, 0u);
  }
  ASSERT_GT(heap.gc_stats().mark_quanta, 0u);

  // A store into the already-traced array must re-grey the child: the
  // finalize below skips black roots, so without the barrier the child
  // would stay unmarked and the sweep would free it.
  const Value child = heap.new_float(host, 7.5);
  objops::array_set(host, heap, arr.obj(), 0, child);
  EXPECT_GT(heap.mark_grey_size(), 0u);

  heap.run_gc(host.roots);
  EXPECT_FALSE(heap.mark_epoch_active());
  EXPECT_EQ(child.obj()->type(), ObjType::kFloat)
      << "re-greyed child was swept by the finalizing collection";
  EXPECT_DOUBLE_EQ(
      objops::value_to_double(host, objops::array_get(host, arr.obj(), 0)),
      7.5);
}

TEST(HeapArenaSteal, StealsBeforeForcingGcAndIsSeedDeterministic) {
  // Heap base addresses differ between instances, so the determinism
  // comparison uses the per-allocation region labels (which capture the
  // steal points and the post-steal line ownership) plus the steal stats.
  auto run = [](u64 seed) {
    HeapConfig cfg = arena_config();
    cfg.arena_steal = true;
    cfg.steal_seed = seed;
    Heap heap(cfg);
    DirectHost host;
    host.heap = &heap;
    std::vector<std::string> labels;
    // Fragment the pool first: on a fresh heap the pool is two whole-block
    // segments and oversized carves split them without ever stashing. A
    // collection with every 8th object surviving re-pools the heap as many
    // small runs, so subsequent batch carves stash their surplus segments.
    for (int i = 0; i < 1600; ++i) {
      host.tid = static_cast<u32>(i) % cfg.max_threads;
      const Value v = heap.new_float(host, i);
      // Every thread keeps alternating 4-object (one line) runs of its own
      // bump-adjacent objects: the freed runs are exactly line-sized, so
      // the sweep re-pools all of them (none leak to the global fragment
      // list, which would feed the drained thread before the steal path).
      if ((i / static_cast<int>(cfg.max_threads)) % 8 < 4)
        host.roots.values.push_back(v);
    }
    heap.run_gc(host.roots);
    const u64 gc_baseline = host.gc_calls;

    // Spread allocation over every thread until the shared pool is fully
    // carved into per-thread segments (surplus lands in the stashes)...
    int guard = 0;
    while (*heap.arena_pool_head() != 0 && guard < 2100) {
      host.tid = static_cast<u32>(guard) % cfg.max_threads;
      labels.push_back(heap.describe_address(
          heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat)));
      ++guard;
    }
    EXPECT_LT(guard, 2100) << "pool never drained";
    // ...then drain thread 0: once its own stash and bump window run out it
    // must steal from a sibling's stash instead of forcing a collection.
    host.tid = 0;
    bool saw_stolen = false;
    for (int i = 0; i < 400 && !saw_stolen; ++i) {
      labels.push_back(heap.describe_address(
          heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat)));
      saw_stolen = labels.back() == "arena-steal";
    }
    EXPECT_GE(heap.gc_stats().arena_steals, 1u);
    EXPECT_GT(heap.gc_stats().stolen_segments, 0u);
    EXPECT_TRUE(saw_stolen)
        << "allocations from a stolen segment must classify as arena-steal";
    EXPECT_EQ(host.gc_calls, gc_baseline)
        << "stealing must pre-empt the forced GC";
    return std::pair<std::vector<std::string>, u64>(
        labels, heap.gc_stats().stolen_segments);
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a.first, b.first)
      << "same seed must give the same victim order and allocation regions";
  EXPECT_EQ(a.second, b.second);
}

// ---------------------------------------------------------------------------
// Guest-address rebase: describe_line takes guest lines now, and the
// generational labels (nursery-t<N>, arena-steal) must still come out of the
// guest line -> host pointer -> region chain exactly as they do for raw host
// pointers.
// ---------------------------------------------------------------------------

TEST(HeapGuestRebase, NurseryLabelsResolveThroughGuestLines) {
  sim::GuestSpace gs;
  HeapConfig cfg = nursery_config();
  cfg.guest_space = &gs;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;
  const u64 lb = 256;

  // A full line's worth of rooted young objects: bump allocation packs them
  // contiguously, so at least one sits at a line start and its line label
  // reflects the young generation.
  std::vector<Value> kept;
  for (int i = 0; i < 16; ++i) {
    kept.push_back(heap.new_float(host, i));
    host.roots.values.push_back(kept.back());
  }
  bool young_line = false;
  for (const Value& v : kept) {
    ASSERT_EQ(heap.describe_address(v.obj()), "nursery-t0");
    const std::string label = heap.describe_line(gs.line_of(v.obj(), lb), lb);
    EXPECT_TRUE(label == "nursery-t0" || label == "arena-t0") << label;
    if (label == "nursery-t0") young_line = true;
  }
  EXPECT_TRUE(young_line) << "no guest line classified as nursery space";

  // Promotion clears the young bit in place; the same guest lines now
  // classify as plain per-thread arena space.
  for (int i = 0; i < 80; ++i) (void)heap.new_float(host, i);  // garbage
  ASSERT_GE(host.minor_calls, 1u);
  for (const Value& v : kept) {
    ASSERT_EQ(heap.describe_address(v.obj()), "arena-t0");
    EXPECT_EQ(heap.describe_line(gs.line_of(v.obj(), lb), lb), "arena-t0");
  }
}

TEST(HeapGuestRebase, ArenaStealLabelsResolveThroughGuestLines) {
  sim::GuestSpace gs;
  HeapConfig cfg = arena_config();
  cfg.arena_steal = true;
  cfg.guest_space = &gs;
  Heap heap(cfg);
  DirectHost host;
  host.heap = &heap;

  // Same fragmentation + drain recipe as HeapArenaSteal above.
  for (int i = 0; i < 1600; ++i) {
    host.tid = static_cast<u32>(i) % cfg.max_threads;
    const Value v = heap.new_float(host, i);
    if ((i / static_cast<int>(cfg.max_threads)) % 8 < 4)
      host.roots.values.push_back(v);
  }
  heap.run_gc(host.roots);
  int guard = 0;
  while (*heap.arena_pool_head() != 0 && guard < 2100) {
    host.tid = static_cast<u32>(guard) % cfg.max_threads;
    (void)heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
    ++guard;
  }
  ASSERT_LT(guard, 2100) << "pool never drained";
  host.tid = 0;
  const RBasic* stolen = nullptr;
  for (int i = 0; i < 400 && stolen == nullptr; ++i) {
    RBasic* o = heap.alloc_rvalue(host, ObjType::kFloat, kClassFloat);
    if (heap.describe_address(o) == "arena-steal") stolen = o;
  }
  ASSERT_NE(stolen, nullptr) << "drain never hit a stolen segment";

  // Stolen stash segments are line-granular, so the stolen object's whole
  // guest line classifies as steal traffic.
  const u64 lb = 256;
  EXPECT_EQ(heap.describe_line(gs.line_of(stolen, lb), lb), "arena-steal");

  // Unregistered host memory surfaces as the tagged fallback, not a bogus
  // region label.
  int local = 0;
  EXPECT_EQ(heap.describe_line(gs.line_of(&local, lb), lb), "unregistered");
  EXPECT_GT(gs.unregistered_accesses(), 0u);
}

// ---------------------------------------------------------------------------
// Differential: with the new allocator features disabled (the default
// configuration), whole-engine simulated traces are byte-identical to the
// seed allocator's explicit configuration, on both HTM profiles × both
// engines (HTM-dynamic and GIL). This pins "flags off == seed path" at the
// level the paper's experiments run at.
// ---------------------------------------------------------------------------

struct TraceRun {
  runtime::RunStats stats;
  std::string trace;
};

TraceRun run_traced(runtime::EngineConfig cfg, const std::string& src) {
  obs::ObsConfig oc;
  // Keyed by test name so concurrent ctest processes can't race on it.
  oc.trace_path =
      ::testing::TempDir() + "heap_gc_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      "_diff_trace.jsonl";
  TraceRun out;
  {
    obs::Sink sink(oc);
    cfg.heap.initial_slots = 1024;  // tiny heap: force collections
    cfg.heap.block_slots = 1024;
    cfg.obs_sink = &sink;
    runtime::Engine engine(std::move(cfg));
    engine.load_program({src});
    out.stats = engine.run();
    sink.flush();
  }
  std::ifstream f(oc.trace_path);
  std::stringstream buf;
  buf << f.rdbuf();
  out.trace = buf.str();
  std::remove(oc.trace_path.c_str());
  return out;
}

TEST(HeapDifferential, DefaultConfigMatchesSeedAllocatorTraces) {
  // Float arithmetic allocates an RVALUE per iteration, so this coda turns
  // the (mostly tagged-integer) random program into a GC-pressure workload.
  const std::string alloc_coda = R"RUBY(
f = 0.5
j = 0
while j < 4000
  f = f + 1.5
  j = j + 1
end
__record("f", f)
)RUBY";
  u64 seed = 11;
  for (const bool gil_engine : {false, true}) {
    for (const htm::SystemProfile& profile :
         {htm::SystemProfile::zec12(), htm::SystemProfile::xeon_e3()}) {
      const std::string src = testutil::random_program(seed++) + alloc_coda;
      auto base = gil_engine ? runtime::EngineConfig::gil(profile)
                             : runtime::EngineConfig::htm_dynamic(profile);
      const std::string label = std::string(profile.machine.name) +
                                (gil_engine ? "/GIL" : "/HTM");

      // Seed allocator, spelled out: no dealing, no arenas, eager sweep,
      // no nursery / incremental marking / stealing.
      auto seed_cfg = base;
      seed_cfg.heap.thread_local_sweep = false;
      seed_cfg.heap.sweep_deal_policy = HeapConfig::SweepDeal::kRoundRobin;
      seed_cfg.heap.per_thread_arenas = false;
      seed_cfg.heap.lazy_sweep = false;
      seed_cfg.heap.nursery = false;
      seed_cfg.heap.mark_quantum = 0;
      seed_cfg.heap.arena_steal = false;
      const TraceRun expect = run_traced(seed_cfg, src);
      ASSERT_FALSE(expect.trace.empty());
      ASSERT_GT(expect.stats.gc.collections, 0u)
          << "differential must exercise the collector";

      // Default configuration: the new features exist but are off.
      const TraceRun got = run_traced(base, src);
      EXPECT_EQ(got.trace, expect.trace)
          << label << ": default heap config diverged from the seed allocator";
      EXPECT_EQ(got.stats.total_cycles, expect.stats.total_cycles) << label;
      EXPECT_EQ(got.stats.results, expect.stats.results) << label;
    }
  }
}

TEST(Heap, PaddingChangesTcbStride) {
  auto padded_cfg = small_config();
  padded_cfg.padded_thread_structs = true;
  Heap padded(padded_cfg);
  auto packed_cfg = small_config();
  packed_cfg.padded_thread_structs = false;
  Heap packed(packed_cfg);

  const auto dist = [](Heap& h) {
    return reinterpret_cast<std::uintptr_t>(h.tcb_slot(1, 0)) -
           reinterpret_cast<std::uintptr_t>(h.tcb_slot(0, 0));
  };
  EXPECT_GE(dist(padded), 256u) << "padded TCBs get whole zEC12 lines";
  EXPECT_LT(dist(packed), 256u) << "packed TCBs share lines (false sharing)";
}

}  // namespace
}  // namespace gilfree::vm
