// End-to-end smoke tests: tiny programs through the full stack (front end →
// VM → engine) in every sync mode.
#include <gtest/gtest.h>

#include "runtime/engine.hpp"

namespace gilfree {
namespace {

using runtime::Engine;
using runtime::EngineConfig;
using runtime::RunStats;
using runtime::SyncMode;

RunStats run_program(EngineConfig cfg, const std::string& src) {
  cfg.heap.initial_slots = 20'000;  // small heap for tests
  Engine engine(std::move(cfg));
  engine.load_program({src});
  return engine.run();
}

TEST(Smoke, ArithmeticAndRecordGil) {
  const RunStats s = run_program(EngineConfig::gil(htm::SystemProfile::xeon_e3()),
                                 R"(
x = 0
i = 1
while i <= 100
  x += i
  i += 1
end
__record("sum", x)
)");
  EXPECT_DOUBLE_EQ(s.results.at("sum"), 5050.0);
  EXPECT_GT(s.insns_retired, 100u);
}

TEST(Smoke, ArithmeticHtmDynamic) {
  const RunStats s = run_program(
      EngineConfig::htm_dynamic(htm::SystemProfile::xeon_e3()), R"(
x = 0
i = 1
while i <= 100
  x += i
  i += 1
end
__record("sum", x)
)");
  EXPECT_DOUBLE_EQ(s.results.at("sum"), 5050.0);
}

TEST(Smoke, PutsOutput) {
  const RunStats s = run_program(
      EngineConfig::gil(htm::SystemProfile::xeon_e3()), R"(
puts("hello")
puts(1 + 2)
)");
  EXPECT_EQ(s.output, "hello\n3\n");
}

TEST(Smoke, MethodsClassesIvars) {
  const RunStats s = run_program(
      EngineConfig::gil(htm::SystemProfile::xeon_e3()), R"(
class Counter
  def initialize(start)
    @value = start
  end
  def add(n)
    @value += n
    self
  end
  def value
    @value
  end
end

c = Counter.new(10)
c.add(5).add(7)
__record("v", c.value)
)");
  EXPECT_DOUBLE_EQ(s.results.at("v"), 22.0);
}

TEST(Smoke, BlocksAndIterators) {
  const RunStats s = run_program(
      EngineConfig::gil(htm::SystemProfile::xeon_e3()), R"(
total = 0
(1..10).each do |i|
  total += i
end
5.times do |i|
  total += i
end
arr = [1, 2, 3]
doubled = arr.map do |x|
  x * 2
end
__record("total", total)
__record("d2", doubled[2])
)");
  EXPECT_DOUBLE_EQ(s.results.at("total"), 65.0);
  EXPECT_DOUBLE_EQ(s.results.at("d2"), 6.0);
}

TEST(Smoke, ThreadsJoinGil) {
  const std::string src = R"(
$m = Mutex.new
$total = 0
threads = []
4.times do |i|
  threads << Thread.new(i) do |tid|
    local = 0
    j = 0
    while j < 1000
      local += 1
      j += 1
    end
    $m.synchronize do
      $total += local
    end
  end
end
threads.each do |t|
  t.join
end
__record("total", $total)
)";
  const RunStats s =
      run_program(EngineConfig::gil(htm::SystemProfile::xeon_e3()), src);
  EXPECT_DOUBLE_EQ(s.results.at("total"), 4000.0);
}

TEST(Smoke, ThreadsJoinHtmAllModes) {
  const std::string src = R"(
$m = Mutex.new
$total = 0
threads = []
4.times do |i|
  threads << Thread.new(i) do |tid|
    local = 0
    j = 0
    while j < 2000
      local += 1
      j += 1
    end
    $m.synchronize do
      $total += local
    end
  end
end
threads.each do |t|
  t.join
end
__record("total", $total)
)";
  for (i32 len : {1, 16, 256, -1}) {
    auto cfg = len > 0
                   ? EngineConfig::htm_fixed(htm::SystemProfile::xeon_e3(), len)
                   : EngineConfig::htm_dynamic(htm::SystemProfile::xeon_e3());
    const RunStats s = run_program(std::move(cfg), src);
    EXPECT_DOUBLE_EQ(s.results.at("total"), 8000.0) << "len=" << len;
    EXPECT_GT(s.htm.begins, 0u) << "len=" << len;
  }
}

TEST(Smoke, FineGrainedAndUnsynced) {
  const std::string src = R"(
$m = Mutex.new
$total = 0
threads = []
4.times do |i|
  threads << Thread.new(i) do |tid|
    $m.synchronize do
      $total += 100
    end
  end
end
threads.each do |t|
  t.join
end
__record("total", $total)
)";
  for (auto mode : {SyncMode::kFineGrained, SyncMode::kUnsynced}) {
    auto cfg = mode == SyncMode::kFineGrained
                   ? EngineConfig::fine_grained(htm::SystemProfile::xeon_e3())
                   : EngineConfig::unsynced(htm::SystemProfile::xeon_e3());
    const RunStats s = run_program(std::move(cfg), src);
    EXPECT_DOUBLE_EQ(s.results.at("total"), 400.0);
  }
}

TEST(Smoke, BarrierPrelude) {
  const std::string src = R"(
$b = Barrier.new(3)
$m = Mutex.new
$order = 0
$after = 0
threads = []
3.times do |i|
  threads << Thread.new(i) do |tid|
    $m.synchronize do
      $order += 1
    end
    $b.wait
    $m.synchronize do
      if $order == 3
        $after += 1
      end
    end
  end
end
threads.each do |t|
  t.join
end
__record("after", $after)
)";
  const RunStats s = run_program(
      EngineConfig::htm_dynamic(htm::SystemProfile::zec12()), src);
  // Every thread passed the barrier only after all three incremented.
  EXPECT_DOUBLE_EQ(s.results.at("after"), 3.0);
}

TEST(Smoke, GcSurvivesAllocationStorm) {
  auto cfg = EngineConfig::gil(htm::SystemProfile::xeon_e3());
  cfg.heap.initial_slots = 4'096;
  Engine engine(std::move(cfg));
  engine.load_program({R"(
keep = []
i = 0
while i < 6000
  keep << (i * 1.5)
  garbage = [i, i + 1, i + 2]
  i += 1
end
__record("len", keep.length)
__record("last", keep[5999])
)"});
  const RunStats s = engine.run();
  EXPECT_DOUBLE_EQ(s.results.at("len"), 6000.0);
  EXPECT_DOUBLE_EQ(s.results.at("last"), 5999.0 * 1.5);
  EXPECT_GT(s.gc.collections, 0u);
}

TEST(Smoke, GcUnderHtm) {
  auto cfg = EngineConfig::htm_dynamic(htm::SystemProfile::xeon_e3());
  cfg.heap.initial_slots = 4'096;
  Engine engine(std::move(cfg));
  engine.load_program({R"(
threads = []
2.times do |i|
  threads << Thread.new(i) do |tid|
    j = 0
    acc = 0.0
    while j < 4000
      acc = acc + 1.5
      j += 1
    end
    __record("acc" + tid.to_s, acc)
  end
end
threads.each do |t|
  t.join
end
)"});
  const RunStats s = engine.run();
  EXPECT_DOUBLE_EQ(s.results.at("acc0"), 6000.0);
  EXPECT_DOUBLE_EQ(s.results.at("acc1"), 6000.0);
  EXPECT_GT(s.gc.collections, 0u);
}

}  // namespace
}  // namespace gilfree
