// Guest address space unit tests (src/sim/guest_space.hpp): stable
// segment:offset addresses, round-trips, overlap rejection, the tagged
// fallback for unregistered host memory, and the line-grouping invariant
// the HTM/STM rebase relies on.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>

#include "common/check.hpp"
#include "sim/guest_space.hpp"

using namespace gilfree;
using sim::GuestAddr;
using sim::GuestSpace;
using sim::kInvalidGuestAddr;

namespace {

// 256-aligned backing store, like every registered slab in the simulator.
struct alignas(256) Slab {
  std::array<std::byte, 4096> bytes{};
};

TEST(GuestSpace, TranslateIsSegmentBiasedOffset) {
  Slab a, b;
  GuestSpace gs;
  EXPECT_EQ(gs.add_segment("heap-control", a.bytes.data(), a.bytes.size()),
            0u);
  EXPECT_EQ(gs.add_segment("stack-t0", b.bytes.data(), b.bytes.size()), 1u);

  EXPECT_EQ(gs.translate(a.bytes.data()), GuestAddr{1} << 32);
  EXPECT_EQ(gs.translate(a.bytes.data() + 8), (GuestAddr{1} << 32) | 8);
  EXPECT_EQ(gs.translate(b.bytes.data() + 100), (GuestAddr{2} << 32) | 100);
}

TEST(GuestSpace, GuestAddressesDependOnRegistrationOrderNotHostOrder) {
  Slab a, b;
  // Register in the opposite of host-address order: guest addresses must
  // track registration order only.
  GuestSpace gs;
  std::byte* lo = a.bytes.data() < b.bytes.data() ? a.bytes.data()
                                                  : b.bytes.data();
  std::byte* hi = a.bytes.data() < b.bytes.data() ? b.bytes.data()
                                                  : a.bytes.data();
  gs.add_segment("second-in-memory", hi, 4096);
  gs.add_segment("first-in-memory", lo, 4096);
  EXPECT_EQ(gs.translate(hi), GuestAddr{1} << 32);
  EXPECT_EQ(gs.translate(lo), GuestAddr{2} << 32);
}

TEST(GuestSpace, ToHostRoundTrips) {
  Slab a;
  GuestSpace gs;
  gs.add_segment("arena-0", a.bytes.data(), a.bytes.size());
  for (u64 off : {u64{0}, u64{8}, u64{4088}}) {
    const GuestAddr g = gs.translate(a.bytes.data() + off);
    ASSERT_NE(g, kInvalidGuestAddr);
    EXPECT_EQ(gs.to_host(g), a.bytes.data() + off);
  }
  // One-past-the-end and out-of-range guests resolve to nothing.
  EXPECT_EQ(gs.to_host((GuestAddr{1} << 32) | 4096), nullptr);
  EXPECT_EQ(gs.to_host(GuestAddr{2} << 32), nullptr);
  EXPECT_EQ(gs.to_host(0), nullptr);
  EXPECT_EQ(gs.to_host(kInvalidGuestAddr), nullptr);
}

TEST(GuestSpace, UnregisteredHostMemoryIsInvalidAndCounted) {
  Slab a;
  u64 outside = 0;
  GuestSpace gs;
  gs.add_segment("arena-0", a.bytes.data(), a.bytes.size());
  EXPECT_EQ(gs.translate(&outside), kInvalidGuestAddr);
  EXPECT_EQ(gs.unregistered_accesses(), 0u);  // translate doesn't count
  const LineId line = gs.line_of(&outside, 256);
  EXPECT_GE(line, GuestSpace::kHostLineTag);
  EXPECT_EQ(gs.unregistered_accesses(), 1u);
}

TEST(GuestSpace, OverlappingSegmentsAreRejected) {
  Slab a;
  GuestSpace gs;
  gs.add_segment("arena-0", a.bytes.data(), a.bytes.size());
  EXPECT_THROW(gs.add_segment("overlap", a.bytes.data() + 256, 256),
               CheckFailure);
  EXPECT_THROW(gs.add_segment("empty", a.bytes.data() + 8192, 0),
               CheckFailure);
}

TEST(GuestSpace, LineGroupingMatchesHostGrouping) {
  // The rebase-safety invariant: for a 256-aligned slab, two host addresses
  // share a host line of size L (any power of two up to 256) iff their
  // guest addresses share a guest line. Segment windows are 2^32-aligned,
  // so this reduces to offset arithmetic — checked here explicitly.
  Slab a;
  GuestSpace gs;
  gs.add_segment("arena-0", a.bytes.data(), a.bytes.size());
  for (u64 line_bytes : {u64{64}, u64{256}}) {
    for (u64 off = 0; off + 8 <= a.bytes.size(); off += 8) {
      const LineId host_line =
          reinterpret_cast<std::uintptr_t>(a.bytes.data() + off) / line_bytes;
      const LineId host_line0 =
          reinterpret_cast<std::uintptr_t>(a.bytes.data()) / line_bytes;
      const LineId guest_line = gs.line_of(a.bytes.data() + off, line_bytes);
      const LineId guest_line0 = gs.line_of(a.bytes.data(), line_bytes);
      EXPECT_EQ(guest_line - guest_line0, host_line - host_line0)
          << "offset " << off << " line_bytes " << line_bytes;
    }
  }
}

TEST(GuestSpace, DescribeNamesSegmentAndOffset) {
  Slab a;
  GuestSpace gs;
  gs.add_segment("nursery-t3", a.bytes.data(), a.bytes.size());
  EXPECT_EQ(gs.describe(gs.translate(a.bytes.data() + 0x2a8)),
            "nursery-t3+0x2a8");
  EXPECT_EQ(gs.describe(kInvalidGuestAddr), "unregistered");
  EXPECT_EQ(gs.describe(0), "unregistered");
}

TEST(GuestSpace, MruCacheSurvivesInterleavedLookups) {
  Slab a, b, c;
  GuestSpace gs;
  gs.add_segment("s0", a.bytes.data(), a.bytes.size());
  gs.add_segment("s1", b.bytes.data(), b.bytes.size());
  gs.add_segment("s2", c.bytes.data(), c.bytes.size());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gs.translate(a.bytes.data() + 8u * (i % 16)) >> 32, 1u);
    EXPECT_EQ(gs.translate(c.bytes.data() + 8u * (i % 16)) >> 32, 3u);
    EXPECT_EQ(gs.translate(b.bytes.data() + 8u * (i % 16)) >> 32, 2u);
  }
}

}  // namespace
