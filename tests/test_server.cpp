// WEBrick / Rails simulation tests: all requests complete, responses flow,
// and the thread-per-request engine path holds up under every sync mode.
#include <gtest/gtest.h>

#include "httpsim/bench_server.hpp"
#include "httpsim/server_programs.hpp"

namespace gilfree {
namespace {

using httpsim::DriverConfig;
using httpsim::ServerRunResult;
using runtime::EngineConfig;

DriverConfig small_driver(u32 clients, u32 requests) {
  DriverConfig d;
  d.clients = clients;
  d.total_requests = requests;
  return d;
}

TEST(Server, WebrickCompletesAllRequestsGil) {
  auto cfg = EngineConfig::gil(htm::SystemProfile::xeon_e3());
  cfg.heap.initial_slots = 100'000;
  const ServerRunResult r = httpsim::run_server(
      std::move(cfg), httpsim::webrick_source(), small_driver(2, 40));
  EXPECT_EQ(r.completed, 40u);
  EXPECT_DOUBLE_EQ(r.stats.results.at("handled"), 40.0);
  EXPECT_GT(r.throughput_rps, 0.0);
}

TEST(Server, WebrickCompletesAllRequestsHtm) {
  for (i32 len : {1, 16, -1}) {
    auto cfg =
        len > 0 ? EngineConfig::htm_fixed(htm::SystemProfile::xeon_e3(), len)
                : EngineConfig::htm_dynamic(htm::SystemProfile::xeon_e3());
    cfg.heap.initial_slots = 100'000;
    const ServerRunResult r = httpsim::run_server(
        std::move(cfg), httpsim::webrick_source(), small_driver(4, 60));
    EXPECT_EQ(r.completed, 60u) << "len=" << len;
    EXPECT_GT(r.stats.htm.begins, 0u);
  }
}

TEST(Server, RailsCompletesAllRequests) {
  auto cfg = EngineConfig::htm_dynamic(htm::SystemProfile::xeon_e3());
  cfg.heap.initial_slots = 150'000;
  const ServerRunResult r = httpsim::run_server(
      std::move(cfg), httpsim::rails_source(), small_driver(3, 30));
  EXPECT_EQ(r.completed, 30u);
  // Rails responses are full rendered pages.
  EXPECT_GT(r.stats.results.at("handled"), 0.0);
}

TEST(Server, ThroughputScalesWithClientsUnderHtm) {
  // More concurrent clients should not reduce completed work; throughput
  // with 4 clients should beat 1 client under the GIL-free engine.
  auto run_with = [&](u32 clients) {
    auto cfg = EngineConfig::htm_fixed(htm::SystemProfile::xeon_e3(), 1);
    cfg.heap.initial_slots = 150'000;
    return httpsim::run_server(std::move(cfg), httpsim::webrick_source(),
                               small_driver(clients, 120));
  };
  const double t1 = run_with(1).throughput_rps;
  const double t4 = run_with(4).throughput_rps;
  EXPECT_GT(t4, t1 * 1.1) << "t1=" << t1 << " t4=" << t4;
}

TEST(Server, GilAlsoScalesSomewhatViaIo) {
  // §5.5: the GIL configuration also speeds up with concurrency because the
  // GIL is released during I/O.
  auto run_with = [&](u32 clients) {
    auto cfg = EngineConfig::gil(htm::SystemProfile::xeon_e3());
    cfg.heap.initial_slots = 150'000;
    return httpsim::run_server(std::move(cfg), httpsim::webrick_source(),
                               small_driver(clients, 120));
  };
  const double t1 = run_with(1).throughput_rps;
  const double t4 = run_with(4).throughput_rps;
  EXPECT_GT(t4, t1 * 1.02) << "t1=" << t1 << " t4=" << t4;
}

}  // namespace
}  // namespace gilfree
