// Observability subsystem tests: the bounded flight recorder (capacity,
// eviction, ordering, sampling determinism), the JSON emitter/parser
// round-trip, the metrics document schema, and the end-to-end contract —
// an engine run with a Sink attached produces a trace and a metrics
// document whose counts equal the RunStats the engine reports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"

namespace gilfree {
namespace {

using obs::EventKind;
using obs::FlightRecorder;
using obs::JsonValue;
using obs::TraceEvent;

TraceEvent begin_event(u32 tid, Cycles t) {
  TraceEvent e;
  e.kind = EventKind::kTxBegin;
  e.t = t;
  e.tid = tid;
  e.cpu = tid;
  e.yp = 7;
  e.length = 16;
  return e;
}

// --- FlightRecorder ---------------------------------------------------------

TEST(FlightRecorder, RetainsEverythingBelowCapacity) {
  FlightRecorder rec(/*capacity=*/64, /*sample=*/1.0, /*seed=*/1);
  for (u32 i = 0; i < 10; ++i) rec.record(begin_event(0, i));
  EXPECT_EQ(rec.seen(), 10u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.evicted(), 0u);
  const auto events = rec.drain();
  ASSERT_EQ(events.size(), 10u);
  for (u32 i = 0; i < 10; ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].t, i);
  }
}

TEST(FlightRecorder, EvictsOldestWhenFull) {
  FlightRecorder rec(/*capacity=*/8, /*sample=*/1.0, /*seed=*/1);
  for (u32 i = 0; i < 20; ++i) rec.record(begin_event(0, i));
  EXPECT_EQ(rec.seen(), 20u);
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.evicted(), 12u);
  const auto events = rec.drain();
  ASSERT_EQ(events.size(), 8u);
  // The ring keeps the newest events, still in sequence order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
}

TEST(FlightRecorder, DrainResetsTheRing) {
  FlightRecorder rec(/*capacity=*/4, /*sample=*/1.0, /*seed=*/1);
  for (u32 i = 0; i < 6; ++i) rec.record(begin_event(0, i));
  EXPECT_EQ(rec.drain().size(), 4u);
  EXPECT_TRUE(rec.drain().empty());
  rec.record(begin_event(0, 99));
  const auto events = rec.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].t, 99u);
}

TEST(FlightRecorder, SamplingKeepsCommitWithItsBegin) {
  // With per-attempt-group sampling, a commit/abort is retained exactly when
  // its begin was, so the trace never contains orphaned ends.
  FlightRecorder rec(/*capacity=*/1 << 12, /*sample=*/0.3, /*seed=*/7);
  for (u32 i = 0; i < 500; ++i) {
    rec.record(begin_event(/*tid=*/i % 3, 2 * i));
    TraceEvent end = begin_event(i % 3, 2 * i + 1);
    end.kind = (i % 5 == 0) ? EventKind::kTxAbort : EventKind::kTxCommit;
    end.reason = htm::AbortReason::kConflict;
    rec.record(end);
  }
  const auto events = rec.drain();
  EXPECT_GT(events.size(), 0u);
  EXPECT_LT(events.size(), 1000u);
  std::map<u32, EventKind> last_kind;
  for (const auto& e : events) {
    if (e.kind != EventKind::kTxBegin) {
      ASSERT_TRUE(last_kind.count(e.tid) > 0 &&
                  last_kind[e.tid] == EventKind::kTxBegin)
          << "orphaned commit/abort at seq " << e.seq;
    }
    last_kind[e.tid] = e.kind;
  }
}

TEST(FlightRecorder, SamplingIsDeterministicPerSeed) {
  auto run = [](u64 seed) {
    FlightRecorder rec(1 << 12, 0.5, seed);
    for (u32 i = 0; i < 400; ++i) rec.record(begin_event(0, i));
    std::vector<u64> kept;
    for (const auto& e : rec.drain()) kept.push_back(e.t);
    return kept;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// --- JSON emitter / parser --------------------------------------------------

TEST(Json, EscapesAndParsesRoundTrip) {
  std::string out;
  obs::json_append_string(out, "a\"b\\c\n\t\x01z");
  JsonValue v = JsonValue::parse(out);
  EXPECT_EQ(v.as_string(), "a\"b\\c\n\t\x01z");
}

TEST(Json, NumbersIntegralAndReal) {
  std::string out;
  obs::json_append_number(out, u64{18446744073709551615ull});
  EXPECT_EQ(out, "18446744073709551615");
  out.clear();
  obs::json_append_number(out, 2.0);  // integral double: no decimal point
  EXPECT_EQ(out, "2");
  out.clear();
  obs::json_append_number(out, 0.25);
  EXPECT_EQ(JsonValue::parse(out).as_number(), 0.25);
}

TEST(Json, ParsesNestedDocument) {
  const JsonValue v = JsonValue::parse(
      R"({"a":[1,2,{"b":true,"c":null}],"d":"xAy","e":-3.5})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[2].at("b").as_bool(), true);
  EXPECT_TRUE(v.at("a").as_array()[2].at("c").is_null());
  EXPECT_EQ(v.at("d").as_string(), "xAy");
  EXPECT_EQ(v.at("e").as_number(), -3.5);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{}extra"), std::runtime_error);
}

TEST(Trace, EventLineParsesBackWithSchemaFields) {
  TraceEvent e = begin_event(3, 12345);
  e.seq = 9;
  const std::string line = obs::trace_event_to_jsonl(e, /*run=*/2);
  const JsonValue v = JsonValue::parse(line);
  EXPECT_EQ(v.at("ev").as_string(), "tx_begin");
  EXPECT_EQ(v.at("run").as_u64(), 2u);
  EXPECT_EQ(v.at("seq").as_u64(), 9u);
  EXPECT_EQ(v.at("t").as_u64(), 12345u);
  EXPECT_EQ(v.at("tid").as_u64(), 3u);
  EXPECT_EQ(v.at("yp").as_i64(), 7);
  EXPECT_EQ(v.at("len").as_u64(), 16u);

  e.kind = EventKind::kTxAbort;
  e.reason = htm::AbortReason::kOverflowWrite;
  const JsonValue a = JsonValue::parse(obs::trace_event_to_jsonl(e, 2));
  EXPECT_EQ(a.at("ev").as_string(), "tx_abort");
  EXPECT_EQ(a.at("reason").as_string(), "overflow-write");
}

// --- Metrics document -------------------------------------------------------

TEST(Metrics, DocumentRoundTripsThroughParser) {
  obs::RunObserver ob(/*ring_capacity=*/256, /*sample=*/1.0, /*seed=*/5);
  ob.on_tx_begin(10, 0, 0, 4, 16);
  ob.on_tx_abort(20, 0, 0, 4, 16, htm::AbortReason::kConflict);
  ob.on_tx_begin(30, 0, 0, 4, 12);
  ob.on_tx_commit(40, 0, 0, 4, 12);
  ob.on_gil_fallback(50, 1, 1, 9);
  ob.on_request(60, 1, 0, 500);

  obs::RunMetrics m = ob.finalize();
  m.labels = {{"workload", "unit"}, {"threads", "2"}};
  m.mode = "HTM";
  m.machine = "zEC12";
  m.begins = 2;
  m.commits = 1;
  m.aborts_by_reason[static_cast<int>(htm::AbortReason::kConflict)] = 1;
  m.gil_fallbacks = 1;

  const std::string doc = obs::metrics_to_json({m});
  const JsonValue v = JsonValue::parse(doc);
  EXPECT_EQ(v.at("schema").as_string(), "gilfree.metrics/1");
  ASSERT_EQ(v.at("runs").as_array().size(), 1u);
  const JsonValue& r = v.at("runs").as_array()[0];
  EXPECT_EQ(r.at("begins").as_u64(), 2u);
  EXPECT_EQ(r.at("aborts_by_reason").at("conflict").as_u64(), 1u);
  EXPECT_EQ(r.at("gil_fallbacks").as_u64(), 1u);
  EXPECT_EQ(r.at("labels").at("workload").as_string(), "unit");
  EXPECT_EQ(r.at("requests").at("completed").as_u64(), 1u);
  EXPECT_EQ(r.at("requests").at("latency_mean").as_number(), 500.0);
  // Per-yield-point entries carry the exact (unsampled) aggregates.
  bool found_yp4 = false;
  for (const JsonValue& y : r.at("yield_points").as_array()) {
    if (y.at("yp").as_i64() != 4) continue;
    found_yp4 = true;
    EXPECT_EQ(y.at("begins").as_u64(), 2u);
    EXPECT_EQ(y.at("commits").as_u64(), 1u);
    EXPECT_EQ(y.at("aborts_by_reason").at("conflict").as_u64(), 1u);
  }
  EXPECT_TRUE(found_yp4);
  EXPECT_EQ(v.at("totals").at("begins").as_u64(), 2u);
}

TEST(Metrics, ObserverAggregatesAreExactDespiteSampling) {
  // sample=0 drops every trace event; aggregates must still be complete.
  obs::RunObserver ob(/*ring_capacity=*/16, /*sample=*/0.0, /*seed=*/5);
  for (u32 i = 0; i < 100; ++i) {
    ob.on_tx_begin(i, 0, 0, 1, 8);
    if (i % 4 == 0) {
      ob.on_tx_abort(i, 0, 0, 1, 8, htm::AbortReason::kOverflowRead);
    } else {
      ob.on_tx_commit(i, 0, 0, 1, 8);
    }
  }
  EXPECT_TRUE(ob.drain_events().empty());
  const obs::RunMetrics m = ob.finalize();
  const auto& yp = m.per_yield_point.at(1);
  EXPECT_EQ(yp.begins, 100u);
  EXPECT_EQ(yp.commits, 75u);
  EXPECT_EQ(
      yp.aborts_by_reason[static_cast<int>(htm::AbortReason::kOverflowRead)],
      25u);
  EXPECT_EQ(yp.begins_by_length.at(8), 100u);
}

// --- End-to-end: engine run with a Sink -------------------------------------

class SinkEndToEnd : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return ::testing::TempDir() + "obs_" + name;
  }
};

const char* kContended = R"RUBY(
$mutex = Mutex.new
$counter = 0
threads = []
4.times do |i|
  threads << Thread.new(i) do |tid|
    300.times do |k|
      $mutex.synchronize do
        $counter += 1
      end
    end
  end
end
threads.each do |t|
  t.join
end
__record("counter", $counter)
)RUBY";

runtime::RunStats run_with_sink(obs::Sink& sink, u64 seed) {
  auto cfg = runtime::EngineConfig::htm_dynamic(htm::SystemProfile::zec12());
  cfg.seed = seed;
  cfg.obs_sink = &sink;
  sink.next_labels({{"test", "end_to_end"}});
  runtime::Engine engine(std::move(cfg));
  engine.load_program({kContended});
  return engine.run();
}

TEST_F(SinkEndToEnd, MetricsTotalsEqualRunStats) {
  obs::ObsConfig oc;
  oc.metrics_path = path("m.json");
  oc.trace_path = path("t.jsonl");
  runtime::RunStats stats;
  {
    obs::Sink sink(oc);
    stats = run_with_sink(sink, /*seed=*/11);
  }  // destructor flushes

  std::ifstream mf(oc.metrics_path);
  ASSERT_TRUE(mf.good());
  std::stringstream buf;
  buf << mf.rdbuf();
  const JsonValue doc = JsonValue::parse(buf.str());
  ASSERT_EQ(doc.at("runs").as_array().size(), 1u);
  const JsonValue& r = doc.at("runs").as_array()[0];

  // The acceptance contract: metrics counts equal the printed RunStats.
  EXPECT_EQ(r.at("begins").as_u64(), stats.htm.begins);
  EXPECT_EQ(r.at("commits").as_u64(), stats.htm.commits);
  EXPECT_EQ(r.at("aborts").as_u64(), stats.htm.total_aborts());
  EXPECT_EQ(r.at("gil_fallbacks").as_u64(), stats.gil_fallbacks);
  EXPECT_EQ(r.at("length_adjustments").as_u64(), stats.length_adjustments);
  EXPECT_EQ(r.at("insns_retired").as_u64(), stats.insns_retired);
  for (int reason = 1; reason < static_cast<int>(htm::kNumAbortReasons);
       ++reason) {
    const std::string name(
        htm::abort_reason_name(static_cast<htm::AbortReason>(reason)));
    const u64 expect = stats.htm.aborts_by_reason[reason];
    const JsonValue& by_reason = r.at("aborts_by_reason");
    EXPECT_EQ(by_reason.has(name) ? by_reason.at(name).as_u64() : 0u, expect)
        << "reason " << name;
  }

  // With sample=1 and no eviction, trace event counts equal the aggregates.
  std::ifstream tf(oc.trace_path);
  ASSERT_TRUE(tf.good());
  u64 begins = 0, commits = 0, aborts = 0, fallbacks = 0;
  std::string line;
  while (std::getline(tf, line)) {
    const JsonValue e = JsonValue::parse(line);
    const std::string kind = e.at("ev").as_string();
    if (kind == "tx_begin") ++begins;
    if (kind == "tx_commit") ++commits;
    if (kind == "tx_abort") ++aborts;
    if (kind == "gil_fallback") ++fallbacks;
  }
  const JsonValue& tr = r.at("trace");
  if (tr.at("events_evicted").as_u64() == 0) {
    EXPECT_EQ(begins, stats.htm.begins);
    EXPECT_EQ(commits, stats.htm.commits);
    EXPECT_EQ(aborts, stats.htm.total_aborts());
    EXPECT_EQ(fallbacks, stats.gil_fallbacks);
  }
  EXPECT_EQ(tr.at("events_seen").as_u64(),
            begins + commits + aborts + fallbacks +
                tr.at("events_evicted").as_u64());

  std::remove(oc.metrics_path.c_str());
  std::remove(oc.trace_path.c_str());
}

TEST_F(SinkEndToEnd, SameSeedSameProcessProducesIdenticalTrace) {
  // Within one process the simulation is deterministic for a fixed seed
  // (cross-process byte-identity additionally needs ASLR disabled; see
  // docs/OBSERVABILITY.md).
  auto run_trace = [&](const char* name) {
    obs::ObsConfig oc;
    oc.trace_path = path(name);
    {
      obs::Sink sink(oc);
      run_with_sink(sink, /*seed=*/77);
    }
    std::ifstream f(oc.trace_path);
    std::stringstream buf;
    buf << f.rdbuf();
    std::remove(oc.trace_path.c_str());
    return buf.str();
  };
  const std::string a = run_trace("det_a.jsonl");
  const std::string b = run_trace("det_b.jsonl");
  ASSERT_FALSE(a.empty());
  // Event streams must match line-for-line in kind, yield point, and reason
  // (timestamps may shift with host allocation addresses, which steer the
  // simulated cache-line conflicts).
  std::stringstream sa(a), sb(b);
  std::string la, lb;
  u64 lines = 0;
  while (std::getline(sa, la) && std::getline(sb, lb)) {
    const JsonValue ea = JsonValue::parse(la);
    const JsonValue eb = JsonValue::parse(lb);
    ASSERT_EQ(ea.at("ev").as_string(), eb.at("ev").as_string())
        << "line " << lines;
    ++lines;
  }
  EXPECT_GT(lines, 100u);
}

TEST_F(SinkEndToEnd, DisabledSinkWritesNothingAndCostsNothing) {
  obs::ObsConfig oc;  // no paths: disabled
  obs::Sink sink(oc);
  EXPECT_FALSE(sink.enabled());
  const runtime::RunStats stats = run_with_sink(sink, 3);
  EXPECT_GT(stats.htm.begins, 0u);
  EXPECT_TRUE(sink.runs().empty());
}

TEST(ObsConfigFlags, ParsesUniformFlags) {
  const char* argv[] = {"prog", "--trace-out=/tmp/x.jsonl",
                        "--metrics-out=/tmp/y.json", "--trace-sample=0.25",
                        "--trace-capacity=1024"};
  CliFlags flags(5, const_cast<char**>(argv));
  const obs::ObsConfig oc = obs::ObsConfig::from_flags(flags);
  EXPECT_EQ(oc.trace_path, "/tmp/x.jsonl");
  EXPECT_EQ(oc.metrics_path, "/tmp/y.json");
  EXPECT_EQ(oc.sample, 0.25);
  EXPECT_EQ(oc.ring_capacity, 1024u);
  flags.reject_unknown();  // all four flags consumed
}

TEST(ObsConfigFlags, RejectsBadSample) {
  const char* argv[] = {"prog", "--trace-sample=1.5"};
  CliFlags flags(2, const_cast<char**>(argv));
  EXPECT_THROW(obs::ObsConfig::from_flags(flags), std::invalid_argument);
}

}  // namespace
}  // namespace gilfree
