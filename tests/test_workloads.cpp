// NPB workload integration tests: every kernel must produce the same
// checksum under every synchronization engine and thread count — the
// serializability oracle for the whole TLE machinery.
#include <gtest/gtest.h>

#include "workloads/runner.hpp"

namespace gilfree {
namespace {

using runtime::EngineConfig;
using workloads::RunPoint;
using workloads::Workload;

EngineConfig small_heap(EngineConfig cfg) {
  cfg.heap.initial_slots = 200'000;
  return cfg;
}

class NpbKernel : public ::testing::TestWithParam<const char*> {};

TEST_P(NpbKernel, ChecksumConsistentAcrossEngines) {
  const Workload& w = workloads::npb(GetParam());
  const auto profile = htm::SystemProfile::xeon_e3();

  const RunPoint baseline = workloads::run_workload(
      small_heap(EngineConfig::gil(profile)), w, 1, 1);
  EXPECT_GT(baseline.elapsed_us, 0.0);

  struct Case {
    const char* name;
    EngineConfig cfg;
    unsigned threads;
  };
  std::vector<Case> cases;
  cases.push_back({"gil-4t", small_heap(EngineConfig::gil(profile)), 4});
  cases.push_back(
      {"htm1-4t", small_heap(EngineConfig::htm_fixed(profile, 1)), 4});
  cases.push_back(
      {"htm16-4t", small_heap(EngineConfig::htm_fixed(profile, 16)), 4});
  cases.push_back(
      {"htm256-2t", small_heap(EngineConfig::htm_fixed(profile, 256)), 2});
  cases.push_back(
      {"htmdyn-4t", small_heap(EngineConfig::htm_dynamic(profile)), 4});
  cases.push_back(
      {"htmdyn-z12", small_heap(EngineConfig::htm_dynamic(
                         htm::SystemProfile::zec12())), 12});
  cases.push_back(
      {"fine-4t", small_heap(EngineConfig::fine_grained(profile)), 4});
  cases.push_back(
      {"unsync-4t", small_heap(EngineConfig::unsynced(profile)), 4});

  for (auto& c : cases) {
    const RunPoint p = workloads::run_workload(std::move(c.cfg), w, c.threads, 1);
    EXPECT_NEAR(p.verify, baseline.verify,
                std::abs(baseline.verify) * 1e-9 + 1e-9)
        << w.name << " under " << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, NpbKernel,
                         ::testing::Values("BT", "CG", "FT", "IS", "LU",
                                           "MG", "SP"));

TEST(MicroWorkloads, WhileChecksumMatchesFormula) {
  const Workload& w = workloads::micro_while();
  const RunPoint p = workloads::run_workload(
      small_heap(EngineConfig::htm_dynamic(htm::SystemProfile::zec12())), w,
      4, 1);
  // Each of the 4 threads sums 1..30000.
  const double expected = 4.0 * (30000.0 * 30001.0 / 2.0);
  EXPECT_DOUBLE_EQ(p.verify, expected);
}

TEST(MicroWorkloads, IteratorChecksumMatchesFormula) {
  const Workload& w = workloads::micro_iterator();
  const RunPoint p = workloads::run_workload(
      small_heap(EngineConfig::htm_dynamic(htm::SystemProfile::zec12())), w,
      4, 1);
  const double expected = 4.0 * (20000.0 * 20001.0 / 2.0);
  EXPECT_DOUBLE_EQ(p.verify, expected);
}

}  // namespace
}  // namespace gilfree
