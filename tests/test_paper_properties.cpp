// Property tests for the paper's qualitative claims, run at test-sized
// workloads:
//   * determinism of the whole simulator,
//   * §4.2 — without extended yield points, store-footprint overflows
//     dominate,
//   * §4.4 — each conflict removal removes the conflicts it targets,
//   * single-thread HTM overhead exists but is bounded (§5.6: 18-35%),
//   * GIL throughput is flat in threads while HTM scales (Fig. 4/5).
#include <gtest/gtest.h>

#include "htm/abort_reason.hpp"
#include "runtime/engine.hpp"
#include "workloads/runner.hpp"

namespace gilfree {
namespace {

using runtime::Engine;
using runtime::EngineConfig;
using runtime::RunStats;

RunStats run_src(EngineConfig cfg, const std::string& src) {
  cfg.heap.initial_slots = 120'000;
  Engine engine(std::move(cfg));
  engine.load_program({src});
  return engine.run();
}

const char* kParallelFloatLoop = R"(
$out = Array.new(16, 0.0)
ts = []
4.times do |i|
  ts << Thread.new(i) do |tid|
    acc = 0.0
    k = 0
    while k < 250
      acc = acc + 0.1 + 0.2 + 0.3 + 0.4 + 0.5 + 0.6 + 0.7 + 0.8 + 0.9 + 1.0
      acc = acc + 0.1 + 0.2 + 0.3 + 0.4 + 0.5 + 0.6 + 0.7 + 0.8 + 0.9 + 1.0
      acc = acc + 0.1 + 0.2 + 0.3 + 0.4 + 0.5 + 0.6 + 0.7 + 0.8 + 0.9 + 1.0
      k += 1
    end
    $out[tid] = acc
  end
end
ts.each do |t|
  t.join
end
v = 0.0
4.times do |i|
  v += $out[i]
end
__record("v", v)
)";

TEST(PaperProperties, DeterministicAcrossRuns) {
  auto once = [] {
    return run_src(EngineConfig::htm_dynamic(htm::SystemProfile::xeon_e3()),
                   kParallelFloatLoop);
  };
  const RunStats a = once();
  const RunStats b = once();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.insns_retired, b.insns_retired);
  EXPECT_EQ(a.htm.begins, b.htm.begins);
  EXPECT_EQ(a.htm.total_aborts(), b.htm.total_aborts());
  EXPECT_EQ(a.results.at("v"), b.results.at("v"));
}

TEST(PaperProperties, WithoutExtendedYieldPointsOverflowsDominate) {
  auto base_cfg = EngineConfig::htm_fixed(htm::SystemProfile::zec12(), 16);
  const RunStats with_yp = run_src(base_cfg, kParallelFloatLoop);

  auto no_yp_cfg = EngineConfig::htm_fixed(htm::SystemProfile::zec12(), 16);
  no_yp_cfg.vm.extended_yield_points = false;
  const RunStats without_yp = run_src(std::move(no_yp_cfg),
                                      kParallelFloatLoop);

  const auto ovw = [](const RunStats& s) {
    return s.htm.aborts_by_reason[static_cast<int>(
        htm::AbortReason::kOverflowWrite)];
  };
  // 16 original yield points span whole loop iterations full of float
  // allocations — the 8 KB store cache overflows (§4.2: "most of the
  // transactions abort due to store overflows").
  EXPECT_GT(ovw(without_yp), 10 * std::max<u64>(1, ovw(with_yp)));
  EXPECT_GT(without_yp.gil_fallbacks, with_yp.gil_fallbacks);
  // Results stay correct either way.
  EXPECT_NEAR(without_yp.results.at("v"), 4 * 250 * 3 * 5.5, 1e-6);
}

TEST(PaperProperties, GlobalCurrentThreadVariableCausesConflicts) {
  auto good = EngineConfig::htm_fixed(htm::SystemProfile::zec12(), 16);
  const RunStats with_tls = run_src(good, kParallelFloatLoop);

  auto bad = EngineConfig::htm_fixed(htm::SystemProfile::zec12(), 16);
  bad.vm.thread_local_current_thread = false;
  const RunStats without_tls = run_src(std::move(bad), kParallelFloatLoop);

  const auto conflicts = [](const RunStats& s) {
    return s.htm.aborts_by_reason[static_cast<int>(
        htm::AbortReason::kConflict)];
  };
  // §4.4 (a): every transaction writes the same global line.
  EXPECT_GT(conflicts(without_tls),
            3 * std::max<u64>(1, conflicts(with_tls)));
}

TEST(PaperProperties, GlobalFreeListCausesAllocationConflicts) {
  auto good = EngineConfig::htm_fixed(htm::SystemProfile::zec12(), 16);
  const RunStats local_lists = run_src(good, kParallelFloatLoop);

  auto bad = EngineConfig::htm_fixed(htm::SystemProfile::zec12(), 16);
  bad.heap.thread_local_free_lists = false;
  const RunStats global_list = run_src(std::move(bad), kParallelFloatLoop);

  const auto conflicts = [](const RunStats& s) {
    return s.htm.aborts_by_reason[static_cast<int>(
        htm::AbortReason::kConflict)];
  };
  // §4.4 (b): every float allocation pops the same list head.
  EXPECT_GT(conflicts(global_list),
            3 * std::max<u64>(1, conflicts(local_lists)));
}

TEST(PaperProperties, SingleThreadHtmOverheadIsBounded) {
  const char* serial = R"(
x = 0
i = 0
while i < 30000
  x += i
  i += 1
end
__record("x", x)
)";
  // Two live threads (one instantly finishing) so the main thread actually
  // speculates instead of taking the single-thread GIL shortcut.
  const std::string src = std::string("t = Thread.new(0) do |z|\nz\nend\n"
                                      "t.join\n") + serial;
  const RunStats gil =
      run_src(EngineConfig::gil(htm::SystemProfile::zec12()), src);
  const RunStats htm =
      run_src(EngineConfig::htm_dynamic(htm::SystemProfile::zec12()), src);
  const double overhead = static_cast<double>(htm.total_cycles) /
                              static_cast<double>(gil.total_cycles) - 1.0;
  // §5.6 reports 18-35%; allow a generous band but insist it is a real,
  // bounded cost.
  EXPECT_GT(overhead, 0.02);
  EXPECT_LT(overhead, 0.8);
}

TEST(PaperProperties, GilIsFlatHtmScales) {
  const auto& w = workloads::micro_while();
  const auto gil1 = workloads::run_workload(
      EngineConfig::gil(htm::SystemProfile::zec12()), w, 1, 1);
  const auto gil8 = workloads::run_workload(
      EngineConfig::gil(htm::SystemProfile::zec12()), w, 8, 1);
  const auto htm8 = workloads::run_workload(
      EngineConfig::htm_fixed(htm::SystemProfile::zec12(), 16), w, 8, 1);

  // GIL: 8x the work takes ~8x the time (no parallelism).
  const double gil_scaling = 8.0 * gil1.elapsed_us / gil8.elapsed_us;
  EXPECT_LT(gil_scaling, 1.4);
  // HTM: near-linear for this embarrassingly parallel loop (Fig. 4).
  const double htm_scaling = 8.0 * gil1.elapsed_us / htm8.elapsed_us;
  EXPECT_GT(htm_scaling, 3.5);
}

TEST(PaperProperties, SmtHalvesCapacityOnXeon) {
  // A workload whose transactions fit in the full write set but not in the
  // halved one: run 4 threads (distinct cores) vs 8 threads (SMT pairs).
  auto profile = htm::SystemProfile::xeon_e3();
  profile.htm.learning = false;          // isolate the capacity effect
  profile.htm.max_write_lines = 40;      // tighten so halving bites
  const char* src = R"(
$bufs = []
8.times do |i|
  $bufs << Array.new(256, 0)
end
ts = []
$threads.times do |i|
  ts << Thread.new(i) do |tid|
    b = $bufs[tid]
    r = 0
    while r < 40
      k = 0
      while k < 32
        b[k * 8] = r + k
        k += 1
      end
      r += 1
    end
  end
end
ts.each do |t|
  t.join
end
__record("done", 1)
)";
  auto run_threads = [&](unsigned n) {
    auto cfg = EngineConfig::htm_fixed(profile, 256);
    cfg.heap.initial_slots = 120'000;
    Engine engine(std::move(cfg));
    engine.load_program({"$threads = " + std::to_string(n) + "\n", src});
    return engine.run();
  };
  const auto ovw = [](const RunStats& s) {
    return s.htm.aborts_by_reason[static_cast<int>(
        htm::AbortReason::kOverflowWrite)];
  };
  const RunStats four = run_threads(4);
  const RunStats eight = run_threads(8);
  EXPECT_GT(ovw(eight), 2 * std::max<u64>(1, ovw(four)))
      << "SMT sibling pairs halve the usable write set (§5.4)";
}

}  // namespace
}  // namespace gilfree
