// Lexer / parser / compiler unit tests.
#include <gtest/gtest.h>

#include "vm/compiler.hpp"
#include "vm/lexer.hpp"
#include "vm/parser.hpp"

namespace gilfree::vm {
namespace {

TEST(Lexer, NumbersAndScientificNotation) {
  const auto toks = tokenize("1 1_000 2.5 1e3 1.5e-3 7.e");
  ASSERT_GE(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, Tok::kInt);
  EXPECT_EQ(toks[0].ival, 1);
  EXPECT_EQ(toks[1].ival, 1000);
  EXPECT_EQ(toks[2].kind, Tok::kFloat);
  EXPECT_DOUBLE_EQ(toks[2].fval, 2.5);
  EXPECT_DOUBLE_EQ(toks[3].fval, 1000.0);
  EXPECT_DOUBLE_EQ(toks[4].fval, 0.0015);
  // "7.e" is Int(7), op '.', ident e — not a malformed float.
  EXPECT_EQ(toks[5].kind, Tok::kInt);
}

TEST(Lexer, StringsEscapesAndComments) {
  const auto toks = tokenize("\"a\\nb\" # comment\n\"q\\\"\"");
  EXPECT_EQ(toks[0].kind, Tok::kString);
  EXPECT_EQ(toks[0].text, "a\nb");
  EXPECT_EQ(toks[2].text, "q\"");
  EXPECT_THROW(tokenize("\"unterminated"), LexError);
}

TEST(Lexer, IdentifiersKeywordsVariables) {
  const auto toks = tokenize("def foo? @bar @@baz $glob Const :sym end");
  EXPECT_EQ(toks[0].kind, Tok::kKeyword);
  EXPECT_EQ(toks[1].kind, Tok::kIdent);
  EXPECT_EQ(toks[1].text, "foo?");
  EXPECT_EQ(toks[2].kind, Tok::kIvar);
  EXPECT_EQ(toks[3].kind, Tok::kCvar);
  EXPECT_EQ(toks[4].kind, Tok::kGvar);
  EXPECT_EQ(toks[5].kind, Tok::kConst);
  EXPECT_EQ(toks[6].kind, Tok::kSymbol);
  EXPECT_EQ(toks[7].kind, Tok::kKeyword);
}

TEST(Lexer, NewlinesSuppressedInsideBrackets) {
  const auto toks = tokenize("[1,\n2]\nx");
  int newlines = 0;
  for (const auto& t : toks)
    if (t.kind == Tok::kNewline) ++newlines;
  EXPECT_EQ(newlines, 2);  // after ']' and after 'x' (EOF separator)
}

TEST(Lexer, RangesVsFloats) {
  const auto toks = tokenize("1..5 1...5");
  EXPECT_EQ(toks[0].kind, Tok::kInt);
  EXPECT_EQ(toks[1].text, "..");
  EXPECT_EQ(toks[4].text, "...");
}

TEST(Parser, PrecedenceShape) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  NodePtr p = parse_program("x = 1 + 2 * 3");
  ASSERT_EQ(p->kids.size(), 1u);
  const Node& assign = *p->kids[0];
  EXPECT_EQ(assign.kind, Node::Kind::kLocalAssign);
  const Node& plus = *assign.kids[0];
  EXPECT_EQ(plus.kind, Node::Kind::kBinop);
  EXPECT_EQ(plus.name, "+");
  EXPECT_EQ(plus.kids[1]->name, "*");
}

TEST(Parser, CallsBlocksAndIndexing) {
  NodePtr p = parse_program(R"(
a.each do |x, y|
  x
end
foo(1, 2)
b[3] = 4
)");
  ASSERT_EQ(p->kids.size(), 3u);
  const Node& call = *p->kids[0];
  EXPECT_EQ(call.kind, Node::Kind::kCall);
  EXPECT_EQ(call.name, "each");
  ASSERT_EQ(call.params.size(), 2u);
  EXPECT_TRUE(call.block_body != nullptr);
  EXPECT_EQ(p->kids[1]->kids.size(), 3u);  // recv(null) + 2 args
  EXPECT_EQ(p->kids[2]->kind, Node::Kind::kIndexAssign);
}

TEST(Parser, OpAssignDesugars) {
  NodePtr p = parse_program("x = 0\nx += 2\na[1] += 3");
  const Node& plus_assign = *p->kids[1];
  EXPECT_EQ(plus_assign.kind, Node::Kind::kLocalAssign);
  EXPECT_EQ(plus_assign.kids[0]->kind, Node::Kind::kBinop);
  const Node& idx_assign = *p->kids[2];
  EXPECT_EQ(idx_assign.kind, Node::Kind::kIndexAssign);
  EXPECT_EQ(idx_assign.kids[2]->kind, Node::Kind::kBinop);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_program("def end"), ParseError);
  EXPECT_THROW(parse_program("1 +"), ParseError);
  EXPECT_THROW(parse_program("while true"), ParseError);  // missing end
  EXPECT_THROW(parse_program("3 = x"), ParseError);       // bad lvalue
}

TEST(Compiler, AssignsYieldPointsPerPaperRules) {
  Program prog = compile_source(R"(
x = 0
i = 0
while i < 3
  x += i
  i += 1
end
)");
  EXPECT_GT(prog.num_yield_points, 0u);
  const ISeq& top = prog.iseq(prog.top_iseq);
  bool backward_jump_is_yp = false;
  bool forward_branch_is_yp = false;
  bool getlocal_is_yp = false;
  for (std::size_t pc = 0; pc < top.insns.size(); ++pc) {
    const Insn& in = top.insns[pc];
    if (in.op == Op::kJump && in.a >= 0 &&
        static_cast<std::size_t>(in.a) <= pc && in.yp >= 0)
      backward_jump_is_yp = true;
    if (in.op == Op::kBranchUnless && in.a >= 0 &&
        static_cast<std::size_t>(in.a) > pc && in.yp >= 0)
      forward_branch_is_yp = true;
    if (in.op == Op::kGetLocal && in.yp >= 0) getlocal_is_yp = true;
  }
  EXPECT_TRUE(backward_jump_is_yp) << "loop back-edges are yield points";
  EXPECT_FALSE(forward_branch_is_yp) << "forward branches are not";
  EXPECT_TRUE(getlocal_is_yp) << "getlocal is an extended yield point";
}

TEST(Compiler, AssignsUniqueIcSites) {
  Program prog = compile_source(R"(
class A
  def initialize
    @v = 1
  end
  def v
    @v
  end
end
a = A.new
a.v
a.v
)");
  EXPECT_GT(prog.num_ic_sites, 3u);
  // All ic ids are unique.
  std::vector<bool> seen(prog.num_ic_sites, false);
  for (const auto& seq : prog.iseqs) {
    for (const auto& in : seq.insns) {
      if (in.ic >= 0) {
        ASSERT_LT(static_cast<u32>(in.ic), prog.num_ic_sites);
        EXPECT_FALSE(seen[static_cast<u32>(in.ic)]);
        seen[static_cast<u32>(in.ic)] = true;
      }
    }
  }
}

TEST(Compiler, LiteralDeduplication) {
  Program prog = compile_source("x = 5\ny = 5\nz = 5.5\nw = 5.5");
  u32 ints = 0, floats = 0;
  for (const auto& lit : prog.literals) {
    if (lit.kind == Literal::Kind::kInt && lit.ival == 5) ++ints;
    if (lit.kind == Literal::Kind::kFloat && lit.fval == 5.5) ++floats;
  }
  EXPECT_EQ(ints, 1u);
  EXPECT_EQ(floats, 1u);
}

TEST(Compiler, BreakOutsideLoopFails) {
  EXPECT_THROW(compile_source("break"), CompileError);
  EXPECT_THROW(compile_source("a = [1]\na.each do |x|\nbreak\nend"),
               CompileError)
      << "break across a block boundary is unsupported";
}

TEST(Compiler, DisassemblerProducesOutput) {
  Program prog = compile_source("x = 1 + 2");
  const std::string d = prog.disassemble(prog.top_iseq);
  EXPECT_NE(d.find("opt_plus"), std::string::npos);
  EXPECT_NE(d.find("putobject"), std::string::npos);
}

}  // namespace
}  // namespace gilfree::vm
