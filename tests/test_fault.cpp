// Fault-injection tests (docs/ROBUSTNESS.md): the deterministic injector in
// isolation, injected aborts at the HTM-facility level, the engine-level
// robustness contracts (quarantine keeps persistent-abort campaigns within
// the pure-GIL envelope, recovers after the fault window, and converts
// starvation into watchdog events instead of hangs), trace determinism with
// a campaign active, and mid-bytecode abort unwinding as a property over
// seeded random programs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "htm/htm.hpp"
#include "htm/profile.hpp"
#include "obs/json.hpp"
#include "obs/sink.hpp"
#include "runtime/engine.hpp"
#include "testutil_programs.hpp"
#include "workloads/workload.hpp"

namespace gilfree {
namespace {

using fault::FaultConfig;
using fault::FaultInjector;
using fault::FaultKind;
using runtime::EngineConfig;

// --- Injector in isolation --------------------------------------------------

TEST(FaultInjector, SameConfigReplaysIdenticalSpuriousArrivals) {
  FaultConfig fc;
  fc.spurious_mean_cycles = 1'000;
  auto sample = [](FaultInjector& inj) {
    std::vector<int> hits;
    inj.begin_fault(0, 0, 0);  // arms the spurious-arrival clock
    for (Cycles t = 0; t < 200'000; t += 500)
      hits.push_back(inj.spurious_due(0, t) ? 1 : 0);
    return hits;
  };
  FaultInjector a(fc, 4);
  FaultInjector b(fc, 4);
  const std::vector<int> ha = sample(a);
  EXPECT_EQ(ha, sample(b)) << "same seed, same arrivals";
  a.reset();
  EXPECT_EQ(ha, sample(a)) << "reset() must replay the identical campaign";
  EXPECT_GT(std::count(ha.begin(), ha.end(), 1), 10);
  EXPECT_EQ(a.stats().count(FaultKind::kSpurious),
            static_cast<u64>(std::count(ha.begin(), ha.end(), 1)));
}

TEST(FaultInjector, PersistentWindowPinsTargetedYieldPoints) {
  FaultConfig fc;
  fc.persistent_yps = {2};
  fc.persistent_window.from = 100;
  fc.persistent_window.until = 200;
  FaultInjector inj(fc, 1);
  EXPECT_FALSE(inj.begin_fault(0, 2, 50)) << "before the window";
  EXPECT_TRUE(inj.begin_fault(0, 2, 150));
  EXPECT_FALSE(inj.begin_fault(0, 1, 150)) << "untargeted yield point";
  EXPECT_FALSE(inj.begin_fault(0, 2, 250)) << "after the window";
  EXPECT_EQ(inj.stats().count(FaultKind::kPersistent), 1u);
}

TEST(FaultInjector, PersistentAllTargetsEveryYieldPointForever) {
  FaultConfig fc;
  fc.persistent_all_yps = true;  // until == 0: open-ended window
  FaultInjector inj(fc, 1);
  EXPECT_TRUE(inj.begin_fault(0, 0, 0));
  EXPECT_TRUE(inj.begin_fault(0, 57, 1'000'000'000));
  EXPECT_TRUE(inj.begin_fault(0, -1, 5)) << "thread-entry pseudo yield point";
}

TEST(FaultInjector, CapacityFactorAppliesOnlyInsideItsWindow) {
  FaultConfig fc;
  fc.capacity_factor = 0.25;
  fc.capacity_window.from = 1'000;
  fc.capacity_window.until = 2'000;
  FaultInjector inj(fc, 1);
  EXPECT_EQ(inj.capacity_factor(500), 1.0);
  EXPECT_EQ(inj.capacity_factor(1'500), 0.25);
  EXPECT_EQ(inj.capacity_factor(2'500), 1.0);
  EXPECT_TRUE(inj.capacity_active(1'500));
  EXPECT_FALSE(inj.capacity_active(2'500));
}

// --- Facility level ---------------------------------------------------------

struct FacilityFixture {
  explicit FacilityFixture(const FaultConfig& fc)
      : profile(htm::SystemProfile::zec12()),
        machine(profile.machine),
        htm(profile.htm, &machine),
        injector(fc, 12) {
    htm.set_fault_injector(&injector);
  }
  htm::SystemProfile profile;
  sim::Machine machine;
  htm::HtmFacility htm;
  FaultInjector injector;
};

TEST(FaultFacility, SpuriousArrivalsAbortAsTransientConflicts) {
  FaultConfig fc;
  fc.spurious_mean_cycles = 2'000;
  FacilityFixture f(fc);
  u64 word = 0;
  u64 conflicts = 0;
  for (int i = 0; i < 300; ++i) {
    if (f.htm.tx_begin(0) != htm::AbortReason::kNone) continue;
    try {
      for (int j = 0; j < 8; ++j) {
        f.machine.advance(0, 400);
        (void)f.htm.tx_load(0, &word, true);
      }
      (void)f.htm.tx_commit(0);
    } catch (const htm::TxAbort& ab) {
      if (ab.reason == htm::AbortReason::kConflict) ++conflicts;
    }
  }
  // Single CPU, no other transactions: every kConflict abort is injected.
  EXPECT_GT(f.injector.stats().count(FaultKind::kSpurious), 0u);
  EXPECT_EQ(conflicts, f.injector.stats().count(FaultKind::kSpurious));
}

TEST(FaultFacility, PersistentBeginFaultRefusesTheTransaction) {
  FaultConfig fc;
  fc.persistent_all_yps = true;
  FacilityFixture f(fc);
  const htm::AbortReason r = f.htm.tx_begin(0, /*yp=*/3);
  EXPECT_NE(r, htm::AbortReason::kNone);
  EXPECT_TRUE(htm::is_persistent(r))
      << "injected begin faults must look unretryable to the TLE layer";
  EXPECT_FALSE(f.htm.in_tx(0));
  EXPECT_EQ(f.injector.stats().count(FaultKind::kPersistent), 1u);
}

// --- Engine level -----------------------------------------------------------

runtime::RunStats run_micro(EngineConfig cfg, unsigned threads = 4,
                            unsigned scale = 1) {
  runtime::Engine engine(std::move(cfg));
  engine.load_program(
      workloads::sources_for(workloads::micro_while(), threads, scale));
  return engine.run();
}

TEST(FaultEngine, PersistentAbortsEverywhereStayWithinTheGilEnvelope) {
  const auto profile = htm::SystemProfile::zec12();
  const runtime::RunStats gil = run_micro(EngineConfig::gil(profile));

  auto cfg = EngineConfig::htm_dynamic(profile);
  cfg.fault.persistent_all_yps = true;
  const runtime::RunStats storm = run_micro(std::move(cfg));

  EXPECT_EQ(storm.results.at("verify"), gil.results.at("verify"));
  EXPECT_GT(storm.quarantine_enters, 0u)
      << "100% persistent aborts must trip the yield-point breaker";
  EXPECT_GT(storm.faults.count(FaultKind::kPersistent), 0u);
  // The headline robustness contract: with every yield point aborting
  // persistently, quarantined GIL slices keep the run within ~10% of the
  // pure-GIL interpreter instead of degrading to retry storms.
  EXPECT_LE(storm.total_cycles, gil.total_cycles + gil.total_cycles / 10);
  // The watchdog converts GIL-saturated spinning into reported events
  // rather than silent starvation; the run still finishes.
  EXPECT_GT(storm.watchdog_events, 0u);
}

TEST(FaultEngine, QuarantineRecoversAfterThePersistentWindow) {
  const auto profile = htm::SystemProfile::zec12();
  const runtime::RunStats clean = run_micro(EngineConfig::htm_dynamic(profile));

  auto cfg = EngineConfig::htm_dynamic(profile);
  cfg.fault.persistent_all_yps = true;
  cfg.fault.persistent_window.until = clean.total_cycles / 3;
  const runtime::RunStats run = run_micro(std::move(cfg));

  EXPECT_EQ(run.results.at("verify"), clean.results.at("verify"));
  EXPECT_GT(run.quarantine_enters, 0u);
  EXPECT_GE(run.quarantine_exits, 1u)
      << "recovery probes must leave quarantine once the faults stop";
  EXPECT_LT(run.total_cycles, clean.total_cycles * 3)
      << "post-window throughput must recover towards the fault-free run";
}

TEST(FaultEngine, IdenticalSeedAndCampaignReplayAnIdenticalTrace) {
  auto run_trace = [&](const char* name) {
    obs::ObsConfig oc;
    oc.trace_path = ::testing::TempDir() + "fault_" + name;
    std::string text;
    {
      obs::Sink sink(oc);
      auto cfg = EngineConfig::htm_dynamic(htm::SystemProfile::zec12());
      cfg.seed = 42;
      cfg.fault.spurious_mean_cycles = 20'000;
      cfg.obs_sink = &sink;
      (void)run_micro(std::move(cfg));
    }
    std::ifstream f(oc.trace_path);
    std::stringstream buf;
    buf << f.rdbuf();
    std::remove(oc.trace_path.c_str());
    return buf.str();
  };
  const std::string a = run_trace("det_a.jsonl");
  const std::string b = run_trace("det_b.jsonl");
  ASSERT_FALSE(a.empty());
  std::stringstream sa(a), sb(b);
  std::string la, lb;
  u64 lines = 0, fault_events = 0;
  while (std::getline(sa, la) && std::getline(sb, lb)) {
    const obs::JsonValue ea = obs::JsonValue::parse(la);
    const obs::JsonValue eb = obs::JsonValue::parse(lb);
    ASSERT_EQ(ea.at("ev").as_string(), eb.at("ev").as_string())
        << "line " << lines;
    if (ea.at("ev").as_string() == "fault") ++fault_events;
    ++lines;
  }
  EXPECT_GT(lines, 100u);
  EXPECT_GT(fault_events, 0u) << "the campaign must be visible in the trace";
}

// --- Mid-bytecode abort unwinding as a property -----------------------------
//
// Seeded random MiniRuby programs (tests/testutil_programs.hpp) exercise
// every extended-yield-point opcode across threads; the recorded sum is
// schedule-independent, so any divergence from the pure-GIL run means an
// abort rolled back VM state incorrectly.

using testutil::random_program;

runtime::RunStats run_src(EngineConfig cfg, const std::string& src) {
  cfg.heap.initial_slots = 80'000;
  runtime::Engine engine(std::move(cfg));
  engine.load_program({src});
  return engine.run();
}

TEST(FaultProperty, RandomProgramsSurviveAbortStormsUnchanged) {
  for (u64 seed = 1; seed <= 4; ++seed) {
    const std::string src = random_program(seed);
    const runtime::RunStats gil =
        run_src(EngineConfig::gil(htm::SystemProfile::zec12()), src);

    // Heavy spurious-abort storms: transactions die mid-opcode at random
    // points on both machine models, including the TSX learning profile.
    for (const htm::SystemProfile& profile :
         {htm::SystemProfile::zec12(), htm::SystemProfile::xeon_e3()}) {
      auto cfg = EngineConfig::htm_dynamic(profile);
      cfg.fault.spurious_mean_cycles = 5'000;
      const runtime::RunStats storm = run_src(std::move(cfg), src);
      EXPECT_EQ(storm.results.at("sum"), gil.results.at("sum"))
          << "seed " << seed << " on " << profile.machine.name;
      EXPECT_EQ(storm.output, gil.output) << "seed " << seed;
      EXPECT_GT(storm.faults.count(FaultKind::kSpurious), 0u);
    }

    // A persistent-abort window at every yield point exercises the unwind
    // path of each extended-yield-point opcode plus quarantine re-entry.
    auto pcfg = EngineConfig::htm_dynamic(htm::SystemProfile::zec12());
    pcfg.fault.persistent_all_yps = true;
    pcfg.fault.persistent_window.until = 2'000'000;
    const runtime::RunStats pers = run_src(std::move(pcfg), src);
    EXPECT_EQ(pers.results.at("sum"), gil.results.at("sum"))
        << "seed " << seed << " under persistent aborts";
  }
}

}  // namespace
}  // namespace gilfree
