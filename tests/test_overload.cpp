// Overload-protection correctness (docs/ROBUSTNESS.md): strict-CLI
// rejection for the --deadline-*/--shed-*/--breaker-* families, exact
// disposition accounting under overload and connection churn at 1 and 4
// shards, deterministic deadline/backoff keying, and byte-identical breaker
// brown-out runs for a fixed seed.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "htm/profile.hpp"
#include "httpsim/bench_server.hpp"
#include "httpsim/client_driver.hpp"
#include "httpsim/overload.hpp"
#include "httpsim/server_programs.hpp"
#include "runtime/engine.hpp"
#include "testutil_cli.hpp"

namespace gilfree {
namespace {

using httpsim::Arrival;
using httpsim::DriverConfig;
using httpsim::OverloadConfig;
using httpsim::RequestOutcome;
using httpsim::ShardOptions;
using testutil::expect_rejected;
using testutil::make_flags;

void reject_overload_flag(const std::string& flag) {
  expect_rejected(flag, [](const CliFlags& f) {
    DriverConfig::from_flags(f);
    ShardOptions::from_flags(f);
  });
}

TEST(OverloadCli, EveryOverloadFlagRejectsBadValues) {
  reject_overload_flag("--deadline=-1");
  reject_overload_flag("--deadline=soon");
  reject_overload_flag("--deadline-jitter=1.0");
  reject_overload_flag("--deadline-jitter=-0.1");
  reject_overload_flag("--deadline-retries=17");
  reject_overload_flag("--deadline-retries=-1");
  reject_overload_flag("--deadline-backoff=0");
  reject_overload_flag("--shed=sometimes");
  reject_overload_flag("--shed-target=0");
  reject_overload_flag("--shed-interval=0");
}

TEST(OverloadCli, EveryBreakerFlagRejectsBadValues) {
  reject_overload_flag("--breaker=maybe");
  reject_overload_flag("--breaker-epochs=1");
  reject_overload_flag("--breaker-epochs=257");
  reject_overload_flag("--breaker-streak=0");
  reject_overload_flag("--breaker-probe=0");
  reject_overload_flag("--breaker-probe-max=0");
  reject_overload_flag("--breaker-shed-ratio=0");
  reject_overload_flag("--breaker-shed-ratio=1.5");
  reject_overload_flag("--breaker-latency=-1");
  reject_overload_flag("--breaker-fault-shard=-2");
}

TEST(OverloadCli, BreakerRequiresShardsAndOpenLoopConstraintsHold) {
  // --breaker=on with the default single shard is a semantic error.
  {
    CliFlags f = make_flags({"--breaker=on"});
    EXPECT_THROW(ShardOptions::from_flags(f), std::invalid_argument);
  }
  // Deadlines belong to the open-loop driver only.
  {
    CliFlags f = make_flags({"--arrival=closed", "--deadline=1000000"});
    EXPECT_THROW(DriverConfig::from_flags(f), std::invalid_argument);
  }
  // --breaker-fault-shard must name a shard below --shards.
  {
    CliFlags f =
        make_flags({"--shards=4", "--breaker=on", "--breaker-fault-shard=4"});
    EXPECT_THROW(ShardOptions::from_flags(f), std::invalid_argument);
  }
}

TEST(OverloadCli, GoodValuesParseIntoTheConfig) {
  CliFlags f = make_flags(
      {"--arrival=poisson", "--deadline=1500000", "--deadline-jitter=0.25",
       "--deadline-retries=3", "--deadline-backoff=40000", "--shed=codel",
       "--shed-target=300000", "--shed-interval=1000000", "--shards=4",
       "--breaker=on", "--breaker-epochs=10", "--breaker-streak=3",
       "--breaker-probe=2", "--breaker-probe-max=16",
       "--breaker-shed-ratio=0.5", "--breaker-latency=400000",
       "--breaker-fault-shard=1"});
  const DriverConfig d = DriverConfig::from_flags(f);
  const ShardOptions so = ShardOptions::from_flags(f);
  f.reject_unknown();  // every flag above must be consumed
  EXPECT_EQ(d.overload.deadline, 1'500'000u);
  EXPECT_DOUBLE_EQ(d.overload.deadline_jitter, 0.25);
  EXPECT_EQ(d.overload.retry_budget, 3u);
  EXPECT_EQ(d.overload.retry_backoff, 40'000u);
  EXPECT_TRUE(d.overload.codel);
  EXPECT_EQ(d.overload.codel_target, 300'000u);
  EXPECT_EQ(d.overload.codel_interval, 1'000'000u);
  EXPECT_TRUE(so.breaker.enabled);
  EXPECT_EQ(so.breaker.epochs, 10u);
  EXPECT_EQ(so.breaker.trip_streak, 3u);
  EXPECT_EQ(so.breaker.probe_initial, 2u);
  EXPECT_EQ(so.breaker.probe_max, 16u);
  EXPECT_DOUBLE_EQ(so.breaker.shed_ratio, 0.5);
  EXPECT_EQ(so.breaker.latency_budget, 400'000u);
  EXPECT_EQ(so.breaker.fault_shard, 1);
}

// --- deterministic keying ---------------------------------------------------

TEST(Overload, DeadlineAndBackoffArePureFunctionsOfIdAttemptSeed) {
  OverloadConfig o;
  o.deadline = 1'000'000;
  o.deadline_jitter = 0.3;
  o.retry_budget = 4;
  const Cycles d1 = httpsim::request_deadline(o, 42, 0, 500, 7);
  EXPECT_EQ(d1, httpsim::request_deadline(o, 42, 0, 500, 7));
  EXPECT_NE(d1, httpsim::request_deadline(o, 43, 0, 500, 7));
  EXPECT_NE(d1, httpsim::request_deadline(o, 42, 1, 500, 7));
  // Jitter is bounded: deadline * [1-j, 1+j) past `from`.
  for (i64 id = 0; id < 200; ++id) {
    const Cycles d = httpsim::request_deadline(o, id, 0, 0, 7);
    EXPECT_GE(d, static_cast<Cycles>(700'000));
    EXPECT_LT(d, static_cast<Cycles>(1'300'000));
  }
  const Cycles b1 = httpsim::retry_backoff_cycles(o, 42, 1, 7);
  EXPECT_EQ(b1, httpsim::retry_backoff_cycles(o, 42, 1, 7));
  // Exponential growth: attempt 3's floor (0.5 * base << 2) sits above
  // attempt 1's ceiling (1.5 * base).
  EXPECT_GT(httpsim::retry_backoff_cycles(o, 42, 3, 7),
            httpsim::retry_backoff_cycles(o, 42, 1, 7));
}

// --- disposition accounting under churn, 1 and 4 shards ---------------------

DriverConfig overload_config() {
  DriverConfig d;
  d.arrival = Arrival::kPoisson;
  d.total_requests = 200;
  d.rps = 3'000'000.0;  // far past the service rate: drops + sheds happen
  d.queue_limit = 8;
  d.churn = 0.3;
  d.overload.deadline = 1'000'000;
  d.overload.deadline_jitter = 0.2;
  d.overload.retry_budget = 2;
  d.overload.codel = true;
  return d;
}

void check_accounting(const std::vector<httpsim::RequestRecord>& records,
                      u32 scheduled, u64 completed, u64 dropped, u64 shed,
                      u64 retries) {
  // Every scheduled request ends in exactly one final disposition; retries
  // are re-admissions of the same request, not extra dispositions.
  EXPECT_EQ(completed + dropped + shed, scheduled);
  u64 ok = 0, drop = 0, shed_in_log = 0, attempts = 0;
  for (const auto& r : records) {
    attempts += r.attempts;
    switch (r.outcome) {
      case RequestOutcome::kOk:
        ++ok;
        EXPECT_GT(r.responded, 0u) << r.id;
        break;
      case RequestOutcome::kDropped:
        ++drop;
        EXPECT_TRUE(r.dropped) << r.id;
        EXPECT_EQ(r.responded, 0u) << r.id;
        break;
      default:
        ++shed_in_log;
        EXPECT_EQ(r.responded, 0u) << r.id;
        break;
    }
  }
  // The per-request log reconciles with the counters exactly.
  EXPECT_EQ(ok, completed);
  EXPECT_EQ(drop, dropped);
  EXPECT_EQ(shed_in_log, shed);
  EXPECT_EQ(attempts, retries);
}

TEST(Overload, AccountingReconcilesUnderChurnSingleShard) {
  const auto base = runtime::EngineConfig::gil(htm::SystemProfile::zec12());
  const DriverConfig d = overload_config();
  const auto r =
      httpsim::run_server(base, httpsim::webrick_source(), d);
  EXPECT_GT(r.dropped + r.shed, 0u) << "overload must drop or shed";
  EXPECT_GT(r.retries, 0u) << "retry budget must be exercised";
  check_accounting(r.records, d.total_requests, r.completed, r.dropped,
                   r.shed, r.retries);
  // Histograms sample completions only.
  EXPECT_EQ(r.latency_hist.total(), r.completed);
  EXPECT_EQ(r.queue_hist.total(), r.completed);
}

TEST(Overload, AccountingReconcilesUnderChurnFourShards) {
  const auto base = runtime::EngineConfig::gil(htm::SystemProfile::zec12());
  DriverConfig d = overload_config();
  d.rps = 12'000'000.0;  // 4-way sharding splits the load: stay past capacity
  ShardOptions so;
  so.shards = 4;
  const auto r =
      httpsim::run_sharded(base, httpsim::webrick_source(), d, so);
  ASSERT_EQ(r.shards.size(), 4u);
  EXPECT_GT(r.dropped + r.shed, 0u);
  u64 scheduled = 0;
  std::vector<httpsim::RequestRecord> merged;
  for (const auto& s : r.shards) {
    scheduled += s.records.size();
    merged.insert(merged.end(), s.records.begin(), s.records.end());
    // Each shard reconciles independently too.
    EXPECT_EQ(s.completed + s.dropped + s.shed,
              static_cast<u32>(s.records.size()));
  }
  EXPECT_EQ(scheduled, d.total_requests);
  check_accounting(merged, d.total_requests, r.completed, r.dropped, r.shed,
                   r.retries);
  EXPECT_EQ(r.latency_hist.total(), r.completed);
  EXPECT_EQ(r.queue_hist.total(), r.completed);
}

// --- flags-off byte identity ------------------------------------------------

TEST(Overload, DisabledOverloadKeepsRequestLogBytesIdentical) {
  const auto base = runtime::EngineConfig::gil(htm::SystemProfile::zec12());
  DriverConfig d;
  d.arrival = Arrival::kPoisson;
  d.total_requests = 150;
  d.rps = 2'000'000.0;
  d.queue_limit = 16;
  const auto off = httpsim::run_server(base, httpsim::webrick_source(), d);
  // A default-constructed OverloadConfig is the disabled state; parsing an
  // empty command line must produce the same bytes.
  DriverConfig parsed = d;
  parsed.overload = OverloadConfig::from_flags(make_flags({}));
  const auto off2 =
      httpsim::run_server(base, httpsim::webrick_source(), parsed);
  EXPECT_FALSE(parsed.overload.enabled());
  EXPECT_EQ(off.request_log, off2.request_log);
  // With overload off, only ok/drop can appear in the log.
  for (const auto& rec : off.records) {
    EXPECT_TRUE(rec.outcome == RequestOutcome::kOk ||
                rec.outcome == RequestOutcome::kDropped);
    EXPECT_EQ(rec.deadline, 0u);
    EXPECT_EQ(rec.attempts, 0u);
  }
}

// --- breaker determinism ----------------------------------------------------

TEST(Overload, BreakerBrownOutIsByteDeterministicForAFixedSeed) {
  const auto base =
      runtime::EngineConfig::htm_dynamic(htm::SystemProfile::zec12());
  // Mirrors the chaos campaign's worst-fault httpsim phase, where this
  // load deterministically browns out the faulted shard.
  DriverConfig d;
  d.arrival = Arrival::kPoisson;
  d.total_requests = 240;
  d.rps = 2'400'000.0;
  d.overload.deadline = 2'000'000;
  d.overload.retry_budget = 1;
  d.overload.codel = true;
  ShardOptions so;
  so.shards = 4;
  so.breaker.enabled = true;
  so.breaker.epochs = 8;
  so.breaker.trip_streak = 2;
  so.breaker.latency_budget = 400'000;
  so.breaker.fault_shard = 1;
  auto cfg = base;
  cfg.fault.persistent_all_yps = true;
  cfg.fault.gil_handoff_delay_cycles = 150'000;
  cfg.fault.seed = 7;

  const auto a =
      httpsim::run_sharded(cfg, httpsim::webrick_source(), d, so);
  const auto b =
      httpsim::run_sharded(cfg, httpsim::webrick_source(), d, so);
  EXPECT_EQ(a.request_log, b.request_log);
  EXPECT_EQ(a.spilled, b.spilled);
  ASSERT_EQ(a.breaker_transitions.size(), b.breaker_transitions.size());
  for (std::size_t i = 0; i < a.breaker_transitions.size(); ++i) {
    EXPECT_EQ(a.breaker_transitions[i].epoch, b.breaker_transitions[i].epoch);
    EXPECT_EQ(a.breaker_transitions[i].shard, b.breaker_transitions[i].shard);
    EXPECT_EQ(a.breaker_transitions[i].state, b.breaker_transitions[i].state);
  }
  // The faulted shard's brown-out must actually engage under this load.
  EXPECT_GE(a.breaker_transitions.size(), 1u);
  // Transitions arrive in deterministic (epoch, shard) order.
  for (std::size_t i = 1; i < a.breaker_transitions.size(); ++i) {
    EXPECT_GE(a.breaker_transitions[i].epoch,
              a.breaker_transitions[i - 1].epoch);
  }
  // Accounting holds across the epoch-sliced breaker path as well.
  EXPECT_EQ(a.completed + a.dropped + a.shed, d.total_requests);
}

}  // namespace
}  // namespace gilfree
