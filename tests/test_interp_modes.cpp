// Differential test for the interpreter hot-path overhaul: dispatch mode
// (switch vs computed-goto), superinstruction fusion, batched cycle
// charging, and the host fast path are HOST-time optimizations only. For
// any program, machine profile, and engine, every combination must produce
//
//   - the same recorded results and program output,
//   - the same total simulated cycles and retired-instruction counts,
//   - a byte-identical observability trace,
//   - the same exported metrics document once the two host-only fields
//     (dispatch_mode, fused_instructions) are normalized away, and
//   - the same per-yield-point TLE length-table state after the run
//     (HTM engines), i.e. the §4.2 yield-point placement and the Fig. 3
//     learning dynamics are unchanged by fusion and dispatch.
//
// Programs come from the seeded generator shared with test_fault, so every
// extended-yield-point opcode family is covered.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "htm/profile.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "runtime/engine.hpp"
#include "testutil_programs.hpp"
#include "vm/interp.hpp"
#include "vm/options.hpp"

namespace gilfree {
namespace {

using runtime::EngineConfig;

struct ModeConfig {
  const char* name;
  vm::DispatchMode dispatch;
  bool fuse;
  bool batched;
  bool fast_path;
};

// The full dispatch × fusion × batching cube, plus the virtual-host
// baseline (host_fast_path off: one virtual call per charge and access —
// the pre-overhaul cost profile).
constexpr ModeConfig kModes[] = {
    {"switch", vm::DispatchMode::kSwitch, false, false, true},
    {"switch+fuse", vm::DispatchMode::kSwitch, true, false, true},
    {"switch+batched", vm::DispatchMode::kSwitch, false, true, true},
    {"switch+fuse+batched", vm::DispatchMode::kSwitch, true, true, true},
    {"threaded", vm::DispatchMode::kThreaded, false, false, true},
    {"threaded+fuse", vm::DispatchMode::kThreaded, true, false, true},
    {"threaded+batched", vm::DispatchMode::kThreaded, false, true, true},
    {"threaded+fuse+batched", vm::DispatchMode::kThreaded, true, true, true},
    {"virtual-host", vm::DispatchMode::kSwitch, false, false, false},
};

struct Observed {
  runtime::RunStats stats;
  obs::RunMetrics metrics;
  std::string trace;
  std::vector<u32> lengths;  ///< Final length-table state, incl. pseudo yp.
};

/// metrics_to_json with the two host-only fields zeroed, so documents from
/// different dispatch configurations compare equal iff everything simulated
/// (begins, commits, aborts, cycle breakdown, per-yield-point detail, IC
/// hit rates, ...) is identical.
std::string normalized_metrics(obs::RunMetrics m) {
  m.dispatch_mode.clear();
  m.fused_instructions = 0;
  return obs::metrics_to_json({std::move(m)});
}

Observed run_mode(const EngineConfig& base, const ModeConfig& mc,
                  const std::string& src) {
  obs::ObsConfig oc;
  // Keyed by test name: ctest -j runs this suite's tests as concurrent
  // processes, and a shared path races (write / read-back / remove).
  oc.trace_path =
      ::testing::TempDir() + "interp_modes_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      "_trace.jsonl";
  Observed o;
  {
    obs::Sink sink(oc);
    EngineConfig cfg = base;
    cfg.vm.dispatch = mc.dispatch;
    cfg.vm.fuse_superinsns = mc.fuse;
    cfg.vm.batched_charging = mc.batched;
    cfg.vm.host_fast_path = mc.fast_path;
    cfg.heap.initial_slots = 80'000;
    cfg.obs_sink = &sink;
    runtime::Engine engine(std::move(cfg));
    engine.load_program({src});
    o.stats = engine.run();
    if (const tle::LengthTable* lt = engine.length_table())
      for (u32 yp = 0; yp < lt->num_yield_points(); ++yp)
        o.lengths.push_back(lt->length(static_cast<i32>(yp)));
    sink.flush();
    o.metrics = sink.runs().at(0);
  }
  std::ifstream f(oc.trace_path);
  std::stringstream buf;
  buf << f.rdbuf();
  o.trace = buf.str();
  std::remove(oc.trace_path.c_str());
  return o;
}

void expect_equivalent(const Observed& base, const Observed& other,
                       const std::string& label) {
  EXPECT_EQ(other.stats.total_cycles, base.stats.total_cycles) << label;
  EXPECT_EQ(other.stats.insns_retired, base.stats.insns_retired) << label;
  EXPECT_EQ(other.stats.results, base.stats.results) << label;
  EXPECT_EQ(other.stats.output, base.stats.output) << label;
  EXPECT_EQ(other.lengths, base.lengths)
      << label << ": per-yield-point length-table state diverged";
  EXPECT_EQ(other.trace, base.trace)
      << label << ": trace must be byte-identical across dispatch modes";
  EXPECT_EQ(normalized_metrics(other.metrics), normalized_metrics(base.metrics))
      << label << ": metrics (minus host-only fields) diverged";
}

void run_cube(const EngineConfig& base, const std::string& src,
              const std::string& tag) {
  const Observed baseline = run_mode(base, kModes[0], src);
  ASSERT_FALSE(baseline.trace.empty()) << tag;
  for (std::size_t i = 1; i < std::size(kModes); ++i) {
    const Observed o = run_mode(base, kModes[i], src);
    expect_equivalent(baseline, o, tag + "/" + kModes[i].name);
  }
}

TEST(InterpModes, GilEngineIsHostModeInvariant) {
  u64 seed = 1;
  for (const htm::SystemProfile& profile :
       {htm::SystemProfile::zec12(), htm::SystemProfile::xeon_e3()}) {
    const std::string src = testutil::random_program(seed++);
    run_cube(EngineConfig::gil(profile), src,
             std::string("GIL/") + profile.machine.name);
  }
}

TEST(InterpModes, HtmEngineIsHostModeInvariant) {
  u64 seed = 3;
  for (const htm::SystemProfile& profile :
       {htm::SystemProfile::zec12(), htm::SystemProfile::xeon_e3()}) {
    const std::string src = testutil::random_program(seed++);
    run_cube(EngineConfig::htm_dynamic(profile), src,
             std::string("HTM/") + profile.machine.name);
  }
}

TEST(InterpModes, FusionFiresAndIsReportedHonestly) {
  const std::string src = testutil::random_program(7);
  const EngineConfig base = EngineConfig::gil(htm::SystemProfile::zec12());

  const Observed fused = run_mode(base, {"f", vm::DispatchMode::kThreaded,
                                         true, true, true},
                                  src);
  const Observed plain = run_mode(base, {"p", vm::DispatchMode::kThreaded,
                                         false, true, true},
                                  src);
  EXPECT_GT(fused.stats.interp.fused_instructions, 0u)
      << "compiler-annotated pairs must actually fuse";
  EXPECT_EQ(plain.stats.interp.fused_instructions, 0u);
  EXPECT_EQ(fused.metrics.fused_instructions,
            fused.stats.interp.fused_instructions);

  // The exported dispatch mode reflects the build fallback honestly.
  const char* expect_threaded =
      vm::Interp::threaded_dispatch_available() ? "threaded" : "switch";
  EXPECT_EQ(fused.metrics.dispatch_mode, expect_threaded);

  const Observed sw =
      run_mode(base, {"s", vm::DispatchMode::kSwitch, false, false, true}, src);
  EXPECT_EQ(sw.metrics.dispatch_mode, "switch");
}

}  // namespace
}  // namespace gilfree
