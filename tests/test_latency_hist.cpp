// Property tests for the log2-linear latency histogram that backs the
// metrics document's p50/p90/p99/p99.9 request-latency fields:
//
//   - the reported percentile is always within one bucket of the exact
//     sorted-sample percentile (same bucket, never below the exact value),
//   - merge(a, b) is indistinguishable from the histogram of the
//     concatenated streams,
//   - bucket geometry is a total order with bounded relative width,
//   - exact aggregates (count, sum, min, max, mean) are not bucketed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "obs/latency_hist.hpp"

namespace gilfree::obs {
namespace {

/// Exact nearest-rank percentile over a sorted sample, the definition the
/// histogram approximates: the ceil(p/100 * n)-th smallest value.
u64 exact_percentile(const std::vector<u64>& sorted, double p) {
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  rank = std::max<std::size_t>(rank, 1);
  rank = std::min(rank, sorted.size());
  return sorted[rank - 1];
}

/// A latency-shaped random stream: log-uniform magnitudes so every octave
/// of the histogram gets exercised, plus occasional zeros and exact small
/// values for the width-1 buckets.
std::vector<u64> random_stream(u64 seed, std::size_t n) {
  Rng rng(seed);
  std::vector<u64> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_bool(0.05)) {
      values.push_back(rng.next_below(8));  // exact buckets
    } else {
      const u32 bits = static_cast<u32>(rng.next_below(40));
      values.push_back(rng.next_below(u64{1} << (bits + 1)));
    }
  }
  return values;
}

TEST(LatencyHist, BucketGeometryIsATotalOrderWithBoundedWidth) {
  Rng rng(0xb0c4e7);
  for (int i = 0; i < 20'000; ++i) {
    const u32 bits = static_cast<u32>(rng.next_below(63));
    const u64 v = rng.next_below(u64{1} << (bits + 1));
    const u32 b = LatencyHistogram::bucket_of(v);
    ASSERT_LT(b, LatencyHistogram::kNumBuckets);
    ASSERT_LE(LatencyHistogram::bucket_lo(b), v);
    ASSERT_LT(v, LatencyHistogram::bucket_hi(b));
    if (v >= 8) {
      // Relative width bound: width / lo <= 1 / kSubBuckets.
      const double lo = static_cast<double>(LatencyHistogram::bucket_lo(b));
      const double width =
          static_cast<double>(LatencyHistogram::bucket_hi(b)) - lo;
      ASSERT_LE(width, lo / LatencyHistogram::kSubBuckets + 1e-9);
    }
  }
  // Buckets tile contiguously: each bucket ends where the next begins.
  for (u32 b = 0; b + 1 < LatencyHistogram::kNumBuckets; ++b) {
    ASSERT_EQ(LatencyHistogram::bucket_hi(b), LatencyHistogram::bucket_lo(b + 1));
  }
}

TEST(LatencyHist, PercentilesLandInTheExactSamplesBucket) {
  const double kPercentiles[] = {1.0, 10.0, 25.0, 50.0, 75.0,
                                 90.0, 99.0, 99.9, 100.0};
  for (u64 seed = 1; seed <= 24; ++seed) {
    const std::size_t n = 50 + static_cast<std::size_t>(seed) * 37;
    std::vector<u64> values = random_stream(seed * 0x9e3779b9, n);
    LatencyHistogram h;
    for (u64 v : values) h.add(v);
    std::sort(values.begin(), values.end());
    for (double p : kPercentiles) {
      const u64 exact = exact_percentile(values, p);
      const u64 reported = h.percentile(p);
      EXPECT_EQ(LatencyHistogram::bucket_of(reported),
                LatencyHistogram::bucket_of(exact))
          << "seed " << seed << " p" << p << ": reported " << reported
          << " vs exact " << exact;
      EXPECT_GE(reported, exact)
          << "seed " << seed << " p" << p
          << ": bucket-max convention must never under-report";
      EXPECT_LE(reported, values.back()) << "clamped to the observed max";
    }
  }
}

TEST(LatencyHist, SmallExactBucketsReportExactPercentiles) {
  LatencyHistogram h;
  for (u64 v : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u}) h.add(v);
  EXPECT_EQ(h.percentile(50.0), 3u);
  EXPECT_EQ(h.percentile(100.0), 7u);
  EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(LatencyHist, MergeEqualsHistogramOfConcatenation) {
  for (u64 seed = 1; seed <= 12; ++seed) {
    const auto a_values = random_stream(seed, 400);
    const auto b_values = random_stream(seed ^ 0xffff, 273);

    LatencyHistogram a, b, both;
    for (u64 v : a_values) {
      a.add(v);
      both.add(v);
    }
    for (u64 v : b_values) {
      b.add(v);
      both.add(v);
    }
    a.merge(b);

    EXPECT_EQ(a.total(), both.total());
    EXPECT_EQ(a.sum(), both.sum());
    EXPECT_EQ(a.min_value(), both.min_value());
    EXPECT_EQ(a.max_value(), both.max_value());
    EXPECT_EQ(a.to_sparse_string(), both.to_sparse_string())
        << "per-bucket counts must match exactly";
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
      EXPECT_EQ(a.percentile(p), both.percentile(p)) << "p" << p;
    }
  }
}

TEST(LatencyHist, ExactAggregatesAndEmptyBehavior) {
  LatencyHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.percentile(99.0), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.to_sparse_string(), "");

  h.add(10);
  h.add(1'000'000);
  h.add(3, 2);  // weighted
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.sum(), 10u + 1'000'000u + 3u + 3u);
  EXPECT_EQ(h.min_value(), 3u);
  EXPECT_EQ(h.max_value(), 1'000'000u);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum()) / 4.0);
}

}  // namespace
}  // namespace gilfree::obs
