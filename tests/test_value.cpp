// Value tagging unit + property tests (CRuby 1.9 encoding).
#include <gtest/gtest.h>

#include "vm/object.hpp"
#include "vm/value.hpp"

namespace gilfree::vm {
namespace {

TEST(Value, ImmediateEncodings) {
  EXPECT_TRUE(Value::nil().is_nil());
  EXPECT_TRUE(Value::true_v().is_true());
  EXPECT_TRUE(Value::false_v().is_false());
  EXPECT_TRUE(Value::undef().is_undef());
  EXPECT_EQ(Value::false_v().bits(), 0u);  // CRuby: Qfalse == 0
  EXPECT_EQ(Value::nil().bits(), 4u);      // CRuby: Qnil == 4
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value::nil().truthy());
  EXPECT_FALSE(Value::false_v().truthy());
  EXPECT_TRUE(Value::true_v().truthy());
  EXPECT_TRUE(Value::fixnum(0).truthy());  // 0 is truthy in Ruby
  EXPECT_TRUE(Value::fixnum(-1).truthy());
  EXPECT_TRUE(Value::symbol(3).truthy());
}

TEST(Value, DefaultIsNil) { EXPECT_TRUE(Value().is_nil()); }

class FixnumRoundTrip : public ::testing::TestWithParam<i64> {};

TEST_P(FixnumRoundTrip, EncodesAndDecodes) {
  const i64 n = GetParam();
  const Value v = Value::fixnum(n);
  EXPECT_TRUE(v.is_fixnum());
  EXPECT_FALSE(v.is_object());
  EXPECT_FALSE(v.is_nil());
  EXPECT_EQ(v.fixnum_val(), n);
  EXPECT_TRUE(v.bits() & 1);  // low tag bit
}

INSTANTIATE_TEST_SUITE_P(
    Boundary, FixnumRoundTrip,
    ::testing::Values(0, 1, -1, 42, -42, 1'000'000'007, -1'000'000'007,
                      Value::kFixnumMax, Value::kFixnumMin,
                      Value::kFixnumMax - 1, Value::kFixnumMin + 1));

TEST(Value, FixnumFits) {
  EXPECT_TRUE(Value::fixnum_fits(Value::kFixnumMax));
  EXPECT_TRUE(Value::fixnum_fits(Value::kFixnumMin));
  EXPECT_FALSE(Value::fixnum_fits(Value::kFixnumMax + 1));
  EXPECT_FALSE(Value::fixnum_fits(Value::kFixnumMin - 1));
}

TEST(Value, SymbolRoundTrip) {
  for (u32 id : {0u, 1u, 65'535u, 1'000'000u}) {
    const Value v = Value::symbol(id);
    EXPECT_TRUE(v.is_symbol());
    EXPECT_FALSE(v.is_fixnum());
    EXPECT_FALSE(v.is_object());
    EXPECT_EQ(v.symbol_id(), id);
  }
}

TEST(Value, ObjectPointerRoundTrip) {
  alignas(64) RBasic obj{};
  const Value v = Value::object(&obj);
  EXPECT_TRUE(v.is_object());
  EXPECT_FALSE(v.is_immediate());
  EXPECT_EQ(v.obj(), &obj);
}

TEST(Value, HeaderPacking) {
  const u64 h = RBasic::make_header(ObjType::kArray, 12345);
  EXPECT_EQ(RBasic::header_type(h), ObjType::kArray);
  EXPECT_EQ(RBasic::header_class(h), 12345u);
}

TEST(Value, EqualityIsBitEquality) {
  EXPECT_EQ(Value::fixnum(7), Value::fixnum(7));
  EXPECT_NE(Value::fixnum(7), Value::fixnum(8));
  EXPECT_NE(Value::fixnum(0), Value::false_v());
}

}  // namespace
}  // namespace gilfree::vm
