// Multi-process cluster serving (docs/ARCHITECTURE.md cluster section):
// strict-CLI rejection and round-trip for the --shards/--steal-*/--scale-*
// family, the flags-off differential pinning the cluster supervisor to the
// in-process sharded runner byte for byte, same-seed byte-identity of merged
// logs / per-shard artifacts / record streams across worker processes,
// steal-protocol effectiveness under a Zipf-skewed key space, queue-driven
// autoscale spawn + drain-and-retire against a trace-replayed burst, and
// the gilfree.record/httpsim.1 write/read/verify round trip.
//
// Like test_cross_process, the supervisor re-execs this binary
// (/proc/self/exe) as its shard workers, so the test brings its own main
// and dispatches --cluster-worker before gtest sees argv.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "htm/profile.hpp"
#include "httpsim/bench_server.hpp"
#include "httpsim/client_driver.hpp"
#include "httpsim/cluster/record.hpp"
#include "httpsim/cluster/supervisor.hpp"
#include "httpsim/cluster/worker.hpp"
#include "httpsim/server_programs.hpp"
#include "runtime/engine.hpp"
#include "testutil_cli.hpp"

namespace gilfree {
namespace {

using httpsim::DriverConfig;
using httpsim::ScheduledRequest;
using httpsim::cluster::ClusterOptions;
using httpsim::cluster::ClusterRecord;
using httpsim::cluster::ClusterRunResult;
using httpsim::cluster::ClusterSpec;
using testutil::expect_rejected;
using testutil::make_flags;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// A small open-loop spec every cluster test starts from: 4 shard
/// processes, 4 epochs, 1200 Poisson arrivals at 600k rps on the default
/// zec12 / HTM-dynamic / webrick scenario.
ClusterSpec small_spec() {
  ClusterSpec spec;
  spec.driver.arrival = httpsim::Arrival::kPoisson;
  spec.driver.rps = 600'000.0;
  spec.driver.total_requests = 1'200;
  spec.options.shards = 4;
  spec.options.epochs = 4;
  return spec;
}

void reject_cluster_flag(const std::string& flag) {
  expect_rejected(flag,
                  [](const CliFlags& f) { ClusterOptions::from_flags(f); });
}

TEST(ClusterCli, EveryClusterFlagRejectsBadValues) {
  reject_cluster_flag("--shards=0");
  reject_cluster_flag("--shards=65");
  reject_cluster_flag("--router=random");
  reject_cluster_flag("--scale-max=65");
  reject_cluster_flag("--cluster-epochs=0");
  reject_cluster_flag("--cluster-epochs=4097");
  reject_cluster_flag("--steal=maybe");
  reject_cluster_flag("--steal-margin=0");
  reject_cluster_flag("--steal-batch=0");
  reject_cluster_flag("--steal-rounds=0");
  reject_cluster_flag("--steal-rounds=1025");
  reject_cluster_flag("--autoscale=maybe");
  reject_cluster_flag("--scale-min=0");
  reject_cluster_flag("--scale-up-depth=0");
  reject_cluster_flag("--scale-up-p99=-1");
  reject_cluster_flag("--scale-down-depth=-1");
  reject_cluster_flag("--scale-sustain=0");
  reject_cluster_flag("--scale-idle=0");
}

TEST(ClusterCli, SemanticCombinationsReject) {
  // --scale-max below --shards leaves no room for the configured fleet.
  {
    CliFlags f = make_flags({"--shards=8", "--scale-max=4"});
    EXPECT_THROW(ClusterOptions::from_flags(f), std::invalid_argument);
  }
  // --scale-min may not exceed --shards.
  {
    CliFlags f = make_flags({"--shards=2", "--scale-min=3"});
    EXPECT_THROW(ClusterOptions::from_flags(f), std::invalid_argument);
  }
  // Autoscale with neither headroom above --shards nor drain room below it
  // could never act.
  {
    CliFlags f = make_flags({"--shards=2", "--autoscale=on", "--scale-min=2"});
    EXPECT_THROW(ClusterOptions::from_flags(f), std::invalid_argument);
  }
}

TEST(ClusterCli, ToFlagsRoundTripsNonDefaults) {
  ClusterOptions o;
  o.shards = 3;
  o.max_shards = 7;
  o.epochs = 12;
  o.router = httpsim::Router::kRoundRobin;
  o.steal = true;
  o.steal_margin = 5;
  o.steal_batch = 33;
  o.steal_rounds = 2;
  o.autoscale = true;
  o.scale_min = 2;
  o.scale_up_depth = 17;
  o.scale_up_p99 = 123'456;
  o.scale_down_depth = 4;
  o.scale_sustain = 3;
  o.scale_idle = 5;

  const ClusterOptions back =
      ClusterOptions::from_flags(make_flags(o.to_flags()));
  EXPECT_EQ(back.shards, o.shards);
  EXPECT_EQ(back.max_shards, o.max_shards);
  EXPECT_EQ(back.epochs, o.epochs);
  EXPECT_EQ(back.router, o.router);
  EXPECT_EQ(back.steal, o.steal);
  EXPECT_EQ(back.steal_margin, o.steal_margin);
  EXPECT_EQ(back.steal_batch, o.steal_batch);
  EXPECT_EQ(back.steal_rounds, o.steal_rounds);
  EXPECT_EQ(back.autoscale, o.autoscale);
  EXPECT_EQ(back.scale_min, o.scale_min);
  EXPECT_EQ(back.scale_up_depth, o.scale_up_depth);
  EXPECT_EQ(back.scale_up_p99, o.scale_up_p99);
  EXPECT_EQ(back.scale_down_depth, o.scale_down_depth);
  EXPECT_EQ(back.scale_sustain, o.scale_sustain);
  EXPECT_EQ(back.scale_idle, o.scale_idle);

  // Defaults emit no flags at all.
  EXPECT_TRUE(ClusterOptions{}.to_flags().empty());
}

TEST(ClusterRun, RejectsClosedLoopAndZeroRequests) {
  ClusterSpec closed = small_spec();
  closed.driver.arrival = httpsim::Arrival::kClosed;
  EXPECT_THROW(httpsim::cluster::run_cluster(closed), std::invalid_argument);

  ClusterSpec empty = small_spec();
  empty.driver.total_requests = 0;
  EXPECT_THROW(httpsim::cluster::run_cluster(empty), std::invalid_argument);
}

// The flags-off differential: with one epoch and no steal/autoscale, the
// multi-process cluster is the in-process sharded runner spread across OS
// processes — the merged request log and every counter must match byte for
// byte. This is what pins the worker's per-slice engine setup (rps share,
// thread budget, shard_id/shard_count) to run_open_loop_slice.
TEST(ClusterRun, FlagsOffMatchesInProcessSharding) {
  ClusterSpec spec = small_spec();
  spec.options.epochs = 1;
  const ClusterRunResult cluster = httpsim::cluster::run_cluster(spec);

  runtime::EngineConfig base =
      runtime::EngineConfig::htm_dynamic(htm::SystemProfile::zec12());
  base.seed = spec.engine_seed;
  httpsim::ShardOptions sharding;
  sharding.shards = spec.options.shards;
  sharding.router = spec.options.router;
  const httpsim::ShardedRunResult inproc = httpsim::run_sharded(
      base, httpsim::webrick_source(), spec.driver, sharding);

  EXPECT_EQ(cluster.request_log, inproc.request_log);
  EXPECT_EQ(cluster.completed, inproc.completed);
  EXPECT_EQ(cluster.dropped, inproc.dropped);
  EXPECT_EQ(cluster.shed, inproc.shed);
  EXPECT_EQ(cluster.retries, inproc.retries);
  EXPECT_EQ(cluster.makespan, inproc.makespan);
  for (u32 s = 0; s < spec.options.shards; ++s)
    EXPECT_EQ(cluster.shards[s].request_log, inproc.shards[s].request_log)
        << "shard " << s;
  EXPECT_EQ(cluster.completed + cluster.dropped + cluster.shed,
            spec.driver.total_requests);
}

// Two same-seed runs — separate worker process fleets — must agree byte for
// byte: merged log, per-shard logs, the supervisor decision stream, and the
// per-shard trace/metrics artifact files.
TEST(ClusterRun, SameSeedRunsAreByteIdentical) {
  ClusterSpec spec = small_spec();
  spec.driver.key_space = 16;
  spec.driver.zipf = 1.2;
  spec.options.steal = true;
  spec.options.steal_margin = 8;
  spec.artifact_stem = testing::TempDir() + "cluster_idA";
  const ClusterRunResult a = httpsim::cluster::run_cluster(spec);

  ClusterSpec again = spec;
  again.artifact_stem = testing::TempDir() + "cluster_idB";
  const ClusterRunResult b = httpsim::cluster::run_cluster(again);

  EXPECT_EQ(a.request_log, b.request_log);
  EXPECT_EQ(a.record_lines, b.record_lines);
  EXPECT_EQ(httpsim::cluster::fnv1a64(a.request_log),
            httpsim::cluster::fnv1a64(b.request_log));
  for (u32 s = 0; s < spec.options.slots(); ++s) {
    const std::string shard = ".shard" + std::to_string(s);
    EXPECT_EQ(a.shards[s].request_log, b.shards[s].request_log)
        << "shard " << s;
    const std::string trace_a = slurp(spec.artifact_stem + shard +
                                      ".trace.jsonl");
    EXPECT_FALSE(trace_a.empty()) << "shard " << s;
    EXPECT_EQ(trace_a, slurp(again.artifact_stem + shard + ".trace.jsonl"))
        << "shard " << s;
    EXPECT_EQ(slurp(spec.artifact_stem + shard + ".metrics.json"),
              slurp(again.artifact_stem + shard + ".metrics.json"))
        << "shard " << s;
  }
}

// Under a hot Zipf key space the hash router concentrates load on one
// shard; the boundary steal pass must visibly move work (steal events in
// the decision stream), flatten the worst dispatch depth, and never lose
// goodput relative to the same run with stealing off.
TEST(ClusterRun, StealingFlattensSkewedQueues) {
  ClusterSpec spec = small_spec();
  spec.driver.total_requests = 2'400;
  spec.driver.key_space = 16;
  spec.driver.zipf = 1.2;
  spec.options.epochs = 8;
  const ClusterRunResult nosteal = httpsim::cluster::run_cluster(spec);
  EXPECT_EQ(nosteal.stolen, 0u);
  EXPECT_EQ(nosteal.peak_depth, nosteal.peak_depth_presteal);

  spec.options.steal = true;
  spec.options.steal_margin = 8;
  const ClusterRunResult steal = httpsim::cluster::run_cluster(spec);
  EXPECT_GT(steal.stolen, 0u);
  EXPECT_FALSE(steal.steals.empty());
  EXPECT_LT(steal.peak_depth, steal.peak_depth_presteal);
  EXPECT_LE(steal.peak_depth, nosteal.peak_depth);
  EXPECT_GE(steal.completed, nosteal.completed);

  // Every steal event shows up in the decision stream, and moved totals
  // reconcile with the result's counter.
  u64 moved = 0;
  for (const auto& ev : steal.steals) {
    EXPECT_NE(ev.from, ev.to);
    EXPECT_GT(ev.moved, 0u);
    moved += ev.moved;
  }
  EXPECT_EQ(moved, steal.stolen);
  u32 steal_lines = 0;
  for (const std::string& line : steal.record_lines)
    if (line.find("\"ev\":\"steal\"") != std::string::npos) ++steal_lines;
  EXPECT_EQ(steal_lines, steal.steals.size());
}

// Queue-driven autoscaling against a trace-replayed burst-then-quiet
// arrival profile: the supervisor must spawn into the burst and
// drain-and-retire through the quiet tail, and the scale events must land
// in the decision stream.
TEST(ClusterRun, AutoscaleSpawnsIntoBurstAndRetiresAfter) {
  const double ghz = htm::SystemProfile::zec12().machine.ghz;
  DriverConfig head;
  head.arrival = httpsim::Arrival::kPoisson;
  head.total_requests = 1'200;
  head.rps = 1'200'000.0;
  DriverConfig quiet = head;
  quiet.total_requests = 600;
  quiet.rps = 80'000.0;
  quiet.seed = head.seed + 1;
  auto sched = httpsim::make_schedule(head, ghz);
  const Cycles offset = sched.back().at + 1'000'000;
  for (ScheduledRequest r : httpsim::make_schedule(quiet, ghz)) {
    r.id += static_cast<i64>(head.total_requests);
    r.at += offset;
    sched.push_back(r);
  }
  const std::string arrivals = testing::TempDir() + "cluster_burst.arrivals";
  {
    std::ofstream out(arrivals, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    out << httpsim::dump_schedule(sched);
  }

  ClusterSpec spec = small_spec();
  spec.driver.arrival = httpsim::Arrival::kTrace;
  spec.driver.arrival_file = arrivals;
  spec.driver.total_requests = 1'800;
  spec.options.shards = 2;
  spec.options.max_shards = 4;
  spec.options.epochs = 12;
  spec.options.autoscale = true;
  spec.options.scale_up_depth = 8;
  spec.options.scale_down_depth = 2;
  spec.options.scale_sustain = 1;
  spec.options.scale_idle = 2;
  const ClusterRunResult r = httpsim::cluster::run_cluster(spec);

  u32 ups = 0, downs = 0;
  for (const auto& ev : r.scales) (ev.up ? ups : downs) += 1;
  EXPECT_GE(ups, 1u);
  EXPECT_GE(downs, 1u);
  EXPECT_GT(r.max_active, spec.options.shards);
  EXPECT_LE(r.max_active, spec.options.slots());
  u32 scale_lines = 0;
  for (const std::string& line : r.record_lines)
    if (line.find("\"ev\":\"scale\"") != std::string::npos) ++scale_lines;
  EXPECT_EQ(scale_lines, r.scales.size());
  EXPECT_EQ(r.completed + r.dropped + r.shed, spec.driver.total_requests);
}

// gilfree.record/httpsim.1 round trip: write, read back the scenario from
// the header's flag strings alone, and replay-verify — then show a
// tampered decision stream is caught.
TEST(ClusterRecordTest, WriteReadVerifyAndTamperDetect) {
  ClusterSpec spec = small_spec();
  spec.driver.key_space = 16;
  spec.driver.zipf = 1.2;
  spec.options.steal = true;
  spec.options.steal_margin = 8;
  const ClusterRunResult r = httpsim::cluster::run_cluster(spec);
  ASSERT_FALSE(r.record_lines.empty());

  const std::string path = testing::TempDir() + "cluster.rec";
  httpsim::cluster::write_cluster_record(path, spec, r);

  const ClusterRecord rec = httpsim::cluster::read_cluster_record(path);
  EXPECT_EQ(rec.spec.machine, spec.machine);
  EXPECT_EQ(rec.spec.config, spec.config);
  EXPECT_EQ(rec.spec.program, spec.program);
  EXPECT_EQ(rec.spec.engine_seed, spec.engine_seed);
  EXPECT_EQ(rec.spec.driver.key_space, spec.driver.key_space);
  EXPECT_EQ(rec.spec.options.steal, spec.options.steal);
  EXPECT_EQ(rec.spec.options.steal_margin, spec.options.steal_margin);
  EXPECT_EQ(rec.lines, r.record_lines);

  EXPECT_EQ(httpsim::cluster::verify_cluster_record(path), "");

  // Flip one digit of the end line's log hash: the replay must diverge.
  std::string contents = slurp(path);
  const auto pos = contents.find("\"log_fnv\":\"");
  ASSERT_NE(pos, std::string::npos);
  char& digit = contents[pos + std::strlen("\"log_fnv\":\"")];
  digit = digit == '9' ? '1' : '9';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  EXPECT_NE(httpsim::cluster::verify_cluster_record(path), "");
}

// The Zipf key generator and keyed routing that feed the steal protocol:
// dump/parse round trip preserves keys, keys are guest-segment-style
// handles, and keyless schedules route exactly as before keys existed.
TEST(ClusterSchedule, KeyedScheduleRoundTripsAndRoutes) {
  DriverConfig cfg;
  cfg.arrival = httpsim::Arrival::kPoisson;
  cfg.total_requests = 500;
  cfg.rps = 600'000.0;
  cfg.key_space = 16;
  cfg.zipf = 1.2;
  const double ghz = htm::SystemProfile::zec12().machine.ghz;
  const auto sched = httpsim::make_schedule(cfg, ghz);
  ASSERT_EQ(sched.size(), cfg.total_requests);

  u64 max_key = 0;
  for (const auto& r : sched) {
    ASSERT_NE(r.key, 0u);                // Keyed run: every request keyed.
    EXPECT_EQ(r.key & 0xffffffffu, 0u);  // (rank + 1) << 32, never raw.
    max_key = std::max(max_key, r.key);
  }
  EXPECT_LE(max_key >> 32, cfg.key_space);

  const auto back = httpsim::parse_schedule(httpsim::dump_schedule(sched));
  ASSERT_EQ(back.size(), sched.size());
  for (std::size_t i = 0; i < sched.size(); ++i) {
    EXPECT_EQ(back[i].id, sched[i].id);
    EXPECT_EQ(back[i].at, sched[i].at);
    EXPECT_EQ(back[i].key, sched[i].key);
  }

  // route_key falls back to the id-hash router when the key is 0.
  for (i64 id = 0; id < 64; ++id)
    EXPECT_EQ(httpsim::route_key(httpsim::Router::kHash, id, 0, 4, cfg.seed),
              httpsim::route_request(httpsim::Router::kHash, id, 4, cfg.seed));
  // A hot key pins to one shard regardless of request id — the
  // concentration the steal pass exists to flatten.
  const u64 hot = sched.front().key;
  const u32 home =
      httpsim::route_key(httpsim::Router::kHash, 0, hot, 4, cfg.seed);
  for (i64 id = 1; id < 64; ++id)
    EXPECT_EQ(httpsim::route_key(httpsim::Router::kHash, id, hot, 4, cfg.seed),
              home);
}

}  // namespace
}  // namespace gilfree

int main(int argc, char** argv) {
  // The supervisor spawns this binary as its shard workers; serve that
  // before gtest init, exactly like the bench front ends do.
  if (argc > 1 && std::strcmp(argv[1], "--cluster-worker") == 0)
    return gilfree::httpsim::cluster::worker_main();
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
