// Cross-process guest-address stability (the tentpole's acceptance
// property): the same seeded scenario, executed in two *separate OS
// processes* with ASLR active, writes byte-identical traces, metrics
// documents, and record streams — because every line id, conflict address,
// and diagnostic label is a sim::GuestSpace address, not a host pointer.
//
// The binary re-executes itself: `test_cross_process --child ...` runs one
// scenario and writes the three artifacts, the gtest side spawns two fresh
// children per scenario and compares the files byte for byte. Covers both
// HTM profiles (zEC12, Xeon E3) and both engines of the paper's comparison
// (GIL and HTM-dynamic).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "htm/profile.hpp"
#include "obs/record.hpp"
#include "obs/sink.hpp"
#include "runtime/engine.hpp"
#include "workloads/replay.hpp"
#include "workloads/workload.hpp"

using namespace gilfree;

namespace {

// --child <machine> <config> <workload> <threads> <scale> <seed>
//         <trace> <metrics> <record>
int child_main(int argc, char** argv) {
  if (argc != 11) {
    std::cerr << "child: expected 9 operands after --child\n";
    return 3;
  }
  try {
    const std::string machine = argv[2];
    const std::string config = argv[3];
    const workloads::Workload* w = workloads::by_name(argv[4]);
    if (w == nullptr) throw std::invalid_argument("unknown workload");
    const unsigned threads = static_cast<unsigned>(std::stoul(argv[5]));
    const unsigned scale = static_cast<unsigned>(std::stoul(argv[6]));
    const u64 seed = std::stoull(argv[7]);

    const htm::SystemProfile profile = machine == "xeon"
                                           ? htm::SystemProfile::xeon_e3()
                                           : htm::SystemProfile::zec12();
    runtime::EngineConfig cfg =
        config == "GIL" ? runtime::EngineConfig::gil(profile)
                        : runtime::EngineConfig::htm_dynamic(profile);
    cfg.seed = seed;

    obs::ObsConfig oc;
    oc.trace_path = argv[8];
    oc.metrics_path = argv[9];
    obs::Sink sink(oc);
    sink.next_labels({{"figure", "cross_process"},
                      {"machine", profile.machine.name},
                      {"workload", w->name},
                      {"config", config},
                      {"threads", std::to_string(threads)}});
    cfg.obs_sink = &sink;

    obs::RecordConfig rc;
    rc.path = argv[10];
    obs::RunRecorder rec(rc);
    rec.begin_run(workloads::make_scenario(w->name, profile.machine.name,
                                           config, threads, scale, seed),
                  workloads::replay_flags(cfg.fault, cfg.stm, nullptr));
    cfg.recorder = &rec;

    runtime::Engine engine(std::move(cfg));
    engine.load_program(workloads::sources_for(*w, threads, scale));
    engine.run();
    sink.flush();
    rec.flush();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "child: " << e.what() << "\n";
    return 3;
  }
}

/// Runs one scenario in a fresh OS process (fork + exec of this binary, so
/// the child gets its own ASLR layout) writing the artifacts to `prefix`.*.
void spawn_scenario(const std::string& machine, const std::string& config,
                    const std::string& workload, unsigned threads,
                    unsigned scale, u64 seed, const std::string& prefix) {
  const std::vector<std::string> args = {
      "/proc/self/exe", "--child",        machine,
      config,           workload,         std::to_string(threads),
      std::to_string(scale),              std::to_string(seed),
      prefix + ".trace",                  prefix + ".metrics",
      prefix + ".rec"};
  std::vector<char*> argv;
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    execv("/proc/self/exe", argv.data());
    _exit(127);  // exec failed
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0) << machine << "/" << config;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void expect_identical_artifacts(const std::string& machine,
                                const std::string& config) {
  const std::string base = testing::TempDir() + "xproc_" + machine + "_" +
                           config;
  spawn_scenario(machine, config, "While", 4, 1, 0x6112024, base + "_a");
  spawn_scenario(machine, config, "While", 4, 1, 0x6112024, base + "_b");
  for (const char* ext : {".trace", ".metrics", ".rec"}) {
    const std::string a = read_file(base + "_a" + ext);
    const std::string b = read_file(base + "_b" + ext);
    ASSERT_FALSE(a.empty()) << machine << "/" << config << ext;
    EXPECT_EQ(a, b) << "processes diverged: " << machine << "/" << config
                    << ext;
  }
}

TEST(CrossProcess, Zec12HtmDynamicArtifactsAreByteIdentical) {
  expect_identical_artifacts("zec12", "HTM-dynamic");
}

TEST(CrossProcess, Zec12GilArtifactsAreByteIdentical) {
  expect_identical_artifacts("zec12", "GIL");
}

TEST(CrossProcess, XeonHtmDynamicArtifactsAreByteIdentical) {
  expect_identical_artifacts("xeon", "HTM-dynamic");
}

TEST(CrossProcess, XeonGilArtifactsAreByteIdentical) {
  expect_identical_artifacts("xeon", "GIL");
}

TEST(CrossProcess, DifferentSeedsActuallyDiverge) {
  // Control: the comparison is meaningful — a different seed changes the
  // recorded stream, so byte equality above is not vacuous.
  const std::string base = testing::TempDir() + "xproc_seed";
  spawn_scenario("zec12", "HTM-dynamic", "While", 4, 1, 1, base + "_a");
  spawn_scenario("zec12", "HTM-dynamic", "While", 4, 1, 2, base + "_b");
  EXPECT_NE(read_file(base + "_a.rec"), read_file(base + "_b.rec"));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--child")
    return child_main(argc, argv);
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
