// HTM facility unit tests: transactional visibility, rollback, conflict
// resolution, capacity limits, SMT capacity halving, the learning model,
// and the conflict table.
#include <gtest/gtest.h>

#include <memory>

#include "htm/conflict_table.hpp"
#include "htm/htm.hpp"
#include "htm/profile.hpp"

namespace gilfree::htm {
namespace {

struct Fixture {
  explicit Fixture(SystemProfile profile = SystemProfile::zec12())
      : machine(profile.machine), htm(profile.htm, &machine) {}
  sim::Machine machine;
  HtmFacility htm;
};

TEST(Htm, CommitMakesStoresVisible) {
  Fixture f;
  u64 word = 1;
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  f.htm.tx_store(0, &word, 42, true);
  EXPECT_EQ(word, 1u) << "store must be buffered until commit";
  EXPECT_EQ(f.htm.tx_commit(0), AbortReason::kNone);
  EXPECT_EQ(word, 42u);
}

TEST(Htm, ReadOwnWrites) {
  Fixture f;
  u64 word = 1;
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  f.htm.tx_store(0, &word, 7, true);
  EXPECT_EQ(f.htm.tx_load(0, &word, true), 7u);
  (void)f.htm.tx_commit(0);
}

TEST(Htm, ExplicitAbortDiscardsStores) {
  Fixture f;
  u64 word = 1;
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  f.htm.tx_store(0, &word, 42, true);
  f.htm.tx_abort(0, AbortReason::kExplicit);
  EXPECT_EQ(word, 1u);
  EXPECT_FALSE(f.htm.in_tx(0));
  EXPECT_EQ(f.htm.stats(0).aborts_by_reason[static_cast<int>(
                AbortReason::kExplicit)],
            1u);
}

TEST(Htm, WriterDoomsReaderOnRequesterWins) {
  Fixture f;
  u64 word = 1;
  // CPU 0 reads the line transactionally.
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  (void)f.htm.tx_load(0, &word, true);
  // CPU 1 writes the same line: CPU 0's transaction is doomed.
  ASSERT_EQ(f.htm.tx_begin(1), AbortReason::kNone);
  f.htm.tx_store(1, &word, 5, true);
  EXPECT_EQ(f.htm.doom(0), AbortReason::kConflict);
  EXPECT_EQ(f.htm.tx_commit(1), AbortReason::kNone);
  EXPECT_EQ(f.htm.tx_commit(0), AbortReason::kConflict);  // rolls back
  EXPECT_EQ(word, 5u);
}

TEST(Htm, ReaderDoomsSpeculativeWriter) {
  Fixture f;
  u64 word = 1;
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  f.htm.tx_store(0, &word, 9, true);
  ASSERT_EQ(f.htm.tx_begin(1), AbortReason::kNone);
  EXPECT_EQ(f.htm.tx_load(1, &word, true), 1u)
      << "reader must see committed memory, not the speculative value";
  EXPECT_EQ(f.htm.doom(0), AbortReason::kConflict);
  EXPECT_EQ(f.htm.tx_commit(1), AbortReason::kNone);
  EXPECT_EQ(f.htm.tx_commit(0), AbortReason::kConflict);
  EXPECT_EQ(word, 1u);
}

TEST(Htm, PrivateLinesDoNotConflict) {
  Fixture f;
  u64 word = 1;
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  f.htm.tx_store(0, &word, 9, /*shared=*/false);
  ASSERT_EQ(f.htm.tx_begin(1), AbortReason::kNone);
  f.htm.tx_store(1, &word, 10, /*shared=*/false);
  EXPECT_EQ(f.htm.doom(0), AbortReason::kNone);
  EXPECT_EQ(f.htm.tx_commit(0), AbortReason::kNone);
  EXPECT_EQ(f.htm.tx_commit(1), AbortReason::kNone);
}

TEST(Htm, NontxStoreDoomsAllTransactionalHolders) {
  Fixture f;
  u64 gil = 0;
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  (void)f.htm.tx_load(0, &gil, true);
  ASSERT_EQ(f.htm.tx_begin(1), AbortReason::kNone);
  (void)f.htm.tx_load(1, &gil, true);
  f.htm.nontx_store(2, &gil, 1);  // GIL acquisition
  EXPECT_EQ(f.htm.doom(0), AbortReason::kConflict);
  EXPECT_EQ(f.htm.doom(1), AbortReason::kConflict);
  EXPECT_EQ(gil, 1u);
}

TEST(Htm, WriteCapacityOverflowIsPersistent) {
  Fixture f;  // zEC12: 32-line write set at 256 B lines
  const u32 cap = f.htm.effective_max_write(0);
  auto buf = std::make_unique<u64[]>((cap + 4) * 32);
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  bool aborted = false;
  try {
    for (u32 i = 0; i < (cap + 2) * 32; i += 32)
      f.htm.tx_store(0, &buf[i], 1, true);
  } catch (const TxAbort& ab) {
    aborted = true;
    EXPECT_EQ(ab.reason, AbortReason::kOverflowWrite);
    EXPECT_TRUE(is_persistent(ab.reason));
  }
  EXPECT_TRUE(aborted);
  EXPECT_FALSE(f.htm.in_tx(0));
}

TEST(Htm, ReadCapacityOverflow) {
  auto profile = SystemProfile::zec12();
  profile.htm.max_read_lines = 8;  // shrink for the test
  Fixture f(profile);
  auto buf = std::make_unique<u64[]>(16 * 32);
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  bool aborted = false;
  try {
    for (u32 i = 0; i < 12 * 32; i += 32) (void)f.htm.tx_load(0, &buf[i], true);
  } catch (const TxAbort& ab) {
    aborted = true;
    EXPECT_EQ(ab.reason, AbortReason::kOverflowRead);
  }
  EXPECT_TRUE(aborted);
}

TEST(Htm, SmtHalvesCapacityWhenSiblingBusy) {
  Fixture f(SystemProfile::xeon_e3());  // 4 cores x 2 SMT
  const u32 full = f.htm.effective_max_write(0);
  f.machine.set_busy(0, true);
  f.machine.set_busy(4, true);  // sibling of cpu 0
  EXPECT_EQ(f.htm.effective_max_write(0), full / 2);
  f.machine.set_busy(4, false);
  EXPECT_EQ(f.htm.effective_max_write(0), full);
}

TEST(Htm, ForceAbortAndDoomAll) {
  Fixture f;
  u64 a = 0, b = 0;
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  f.htm.tx_store(0, &a, 1, true);
  ASSERT_EQ(f.htm.tx_begin(1), AbortReason::kNone);
  f.htm.tx_store(1, &b, 1, true);

  f.htm.force_abort(0, AbortReason::kInterrupt);
  EXPECT_FALSE(f.htm.in_tx(0));
  EXPECT_EQ(a, 0u);

  f.htm.doom_all(kInvalidCpu, AbortReason::kConflict);
  EXPECT_EQ(f.htm.doom(1), AbortReason::kConflict);
  EXPECT_EQ(f.htm.tx_commit(1), AbortReason::kConflict);
  EXPECT_EQ(b, 0u);
}

TEST(Htm, StatsCountCommitsAndAborts) {
  Fixture f;
  u64 w = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
    f.htm.tx_store(0, &w, static_cast<u64>(i), true);
    ASSERT_EQ(f.htm.tx_commit(0), AbortReason::kNone);
  }
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  f.htm.tx_abort(0, AbortReason::kExplicit);
  const HtmStats s = f.htm.total_stats();
  EXPECT_EQ(s.begins, 6u);
  EXPECT_EQ(s.commits, 5u);
  EXPECT_EQ(s.total_aborts(), 1u);
}

TEST(Htm, InterruptsAbortLongTransactions) {
  auto profile = SystemProfile::zec12();
  profile.htm.interrupt_mean_cycles = 1'000;
  Fixture f(profile);
  u64 w = 0;
  u32 interrupted = 0;
  for (int t = 0; t < 50; ++t) {
    if (f.htm.tx_begin(0) != AbortReason::kNone) continue;
    try {
      for (int i = 0; i < 100; ++i) {
        f.machine.advance(0, 50);
        (void)f.htm.tx_load(0, &w, true);
      }
      (void)f.htm.tx_commit(0);
    } catch (const TxAbort& ab) {
      if (ab.reason == AbortReason::kInterrupt) ++interrupted;
    }
  }
  EXPECT_GT(interrupted, 25u) << "5000-cycle txs vs 1000-cycle interrupts";
}

TEST(TsxLearning, RecoversGraduallyAfterOverflows) {
  TsxLearningModel m(1, 0.2, 500, 42);
  for (int i = 0; i < 50; ++i) m.on_overflow(0);
  EXPECT_GT(m.pessimism(0), 0.9);
  // Clean transactions decay pessimism exponentially.
  int iters = 0;
  while (m.pessimism(0) > 0.05 && iters < 10'000) {
    m.on_non_overflow(0);
    ++iters;
  }
  EXPECT_GT(iters, 500) << "recovery must be gradual";
  EXPECT_LT(iters, 5'000);
}

TEST(Htm, ResetClearsConflictDiagnosticsStatsAndLearning) {
  Fixture f(SystemProfile::xeon_e3());  // includes the TSX learning model
  f.htm.set_collect_conflicts(true);
  u64 word = 1;
  ASSERT_EQ(f.htm.tx_begin(0), AbortReason::kNone);
  (void)f.htm.tx_load(0, &word, true);
  f.htm.nontx_store(1, &word, 9);  // dooms CPU 0's transaction
  EXPECT_EQ(f.htm.tx_commit(0), AbortReason::kConflict);
  ASSERT_FALSE(f.htm.conflict_lines().empty());
  ASSERT_GT(f.htm.total_stats().begins, 0u);

  f.htm.reset();
  EXPECT_TRUE(f.htm.conflict_lines().empty())
      << "the conflict-line histogram must not leak across runs";
  EXPECT_EQ(f.htm.total_stats().begins, 0u);
  EXPECT_EQ(f.htm.total_stats().total_aborts(), 0u);
  EXPECT_FALSE(f.htm.in_tx(0));
}

TEST(Htm, ResetRederivesRngStreamsForIdenticalReplay) {
  // Back-to-back runs in one process must be identically distributed:
  // reset() re-derives the interrupt/learning RNG streams from the seed, so
  // replaying the same access pattern reproduces the same statistics.
  auto profile = SystemProfile::xeon_e3();
  profile.htm.interrupt_mean_cycles = 2'000;
  Fixture f(profile);
  u64 word = 0;
  auto drive = [&] {
    for (int t = 0; t < 400; ++t) {
      if (f.htm.tx_begin(0) != AbortReason::kNone) {
        f.machine.advance(0, 200);
        continue;
      }
      try {
        for (int i = 0; i < 4; ++i) {
          f.machine.advance(0, 300);
          (void)f.htm.tx_load(0, &word, true);
        }
        (void)f.htm.tx_commit(0);
      } catch (const TxAbort&) {
      }
    }
    return f.htm.total_stats();
  };
  const HtmStats a = drive();
  ASSERT_GT(a.total_aborts(), 0u) << "interrupts must fire in this setup";
  f.htm.reset();
  const HtmStats b = drive();
  EXPECT_EQ(a.begins, b.begins);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.eager_aborts, b.eager_aborts);
  EXPECT_EQ(a.aborts_by_reason, b.aborts_by_reason);
}

TEST(Htm, ShardRngDerivationKeepsShardZeroIdenticalAndResetStable) {
  // Multi-engine sharding derives each shard's RNG streams from
  // (seed, shard_id). Three contracts: shard 0 is bit-identical to the
  // unsharded facility, sibling shards draw an independent stream, and
  // reset() re-derives the *shard* stream (not the unsharded one) so a
  // shard replays identically after a reset.
  auto profile = SystemProfile::xeon_e3();
  profile.htm.interrupt_mean_cycles = 2'000;

  auto drive = [](Fixture& f) {
    u64 word = 0;
    for (int t = 0; t < 400; ++t) {
      if (f.htm.tx_begin(0) != AbortReason::kNone) {
        f.machine.advance(0, 200);
        continue;
      }
      try {
        for (int i = 0; i < 4; ++i) {
          f.machine.advance(0, 300);
          (void)f.htm.tx_load(0, &word, true);
        }
        (void)f.htm.tx_commit(0);
      } catch (const TxAbort&) {
      }
    }
    return f.htm.total_stats();
  };

  Fixture unsharded(profile);
  const HtmStats base = drive(unsharded);
  ASSERT_GT(base.total_aborts(), 0u) << "interrupts must fire in this setup";

  auto shard0_profile = profile;
  shard0_profile.htm.shard_id = 0;
  Fixture shard0(shard0_profile);
  const HtmStats s0 = drive(shard0);
  EXPECT_EQ(base.begins, s0.begins);
  EXPECT_EQ(base.commits, s0.commits);
  EXPECT_EQ(base.aborts_by_reason, s0.aborts_by_reason)
      << "shard 0 must be bit-identical to the unsharded run";

  auto shard1_profile = profile;
  shard1_profile.htm.shard_id = 1;
  Fixture shard1(shard1_profile);
  const HtmStats s1 = drive(shard1);
  EXPECT_NE(base.aborts_by_reason, s1.aborts_by_reason)
      << "sibling shards must draw independent interrupt streams";

  // Regression: reset() used to be equivalent only for shard 0; a sharded
  // facility must come back on its own (seed, shard_id) stream.
  shard1.htm.reset();
  shard1.machine.reset();
  const HtmStats replay = drive(shard1);
  EXPECT_EQ(s1.begins, replay.begins);
  EXPECT_EQ(s1.commits, replay.commits);
  EXPECT_EQ(s1.aborts_by_reason, replay.aborts_by_reason)
      << "reset() must re-derive the shard stream for identical replay";
}

TEST(ConflictTable, ReaderWriterTracking) {
  ConflictTable t;
  EXPECT_EQ(t.add_reader(10, 0), 0u);
  EXPECT_EQ(t.add_reader(10, 1), 0u);
  // A writer sees both readers (mask bits 0 and 1).
  EXPECT_EQ(t.add_writer(10, 2), 0b011u);
  // A reader sees the writer.
  EXPECT_EQ(t.add_reader(10, 3) & (1u << 2), 1u << 2);
  EXPECT_EQ(t.holders_excluding(10, 0), 0b1110u);
  EXPECT_EQ(t.writer_excluding(10, 2), 0u);  // own write excluded
  t.remove(10, 2);
  EXPECT_EQ(t.writer_excluding(10, 0), 0u);
  t.remove(10, 0);
  t.remove(10, 1);
  t.remove(10, 3);
  EXPECT_EQ(t.tracked_lines(), 0u);
}

}  // namespace
}  // namespace gilfree::htm
