// MiniRuby language-semantics battery: each test runs a program through the
// full stack on the GIL engine and checks recorded results.
#include <gtest/gtest.h>

#include "runtime/engine.hpp"

namespace gilfree {
namespace {

using runtime::Engine;
using runtime::EngineConfig;

double run1(const std::string& src, const std::string& key = "r") {
  auto cfg = EngineConfig::gil(htm::SystemProfile::xeon_e3());
  cfg.heap.initial_slots = 30'000;
  Engine engine(std::move(cfg));
  engine.load_program({src});
  return engine.run().results.at(key);
}

std::string run_out(const std::string& src) {
  auto cfg = EngineConfig::gil(htm::SystemProfile::xeon_e3());
  cfg.heap.initial_slots = 30'000;
  Engine engine(std::move(cfg));
  engine.load_program({src});
  return engine.run().output;
}

TEST(Lang, IntegerDivisionFloorsLikeRuby) {
  EXPECT_EQ(run1("__record(\"r\", 7 / 2)"), 3);
  EXPECT_EQ(run1("__record(\"r\", -7 / 2)"), -4);  // Ruby floors
  EXPECT_EQ(run1("__record(\"r\", 7 % 3)"), 1);
  EXPECT_EQ(run1("__record(\"r\", -7 % 3)"), 2);  // Ruby modulo sign
}

TEST(Lang, FloatArithmeticAndConversion) {
  EXPECT_DOUBLE_EQ(run1("__record(\"r\", 1.5 + 2)"), 3.5);
  EXPECT_DOUBLE_EQ(run1("__record(\"r\", 3 * 0.5)"), 1.5);
  EXPECT_DOUBLE_EQ(run1("__record(\"r\", 7.9.to_i)"), 7.0);
  EXPECT_DOUBLE_EQ(run1("__record(\"r\", 3.to_f / 2)"), 1.5);
  EXPECT_DOUBLE_EQ(run1("__record(\"r\", (0.0 - 2.25).abs)"), 2.25);
  EXPECT_DOUBLE_EQ(run1("__record(\"r\", Math.sqrt(16.0))"), 4.0);
  EXPECT_NEAR(run1("__record(\"r\", Math.sin(0.0) + Math.cos(0.0))"), 1.0,
              1e-12);
}

TEST(Lang, ComparisonAndLogic) {
  EXPECT_EQ(run1(R"(
r = 0
if 1 < 2 && 3 >= 3
  r = 1
end
if 1 == 2 || !(4 != 4)
  r += 10
end
__record("r", r)
)"), 11);
}

TEST(Lang, UnlessUntilElsifAndNext) {
  EXPECT_EQ(run1(R"(
r = 0
unless false
  r += 1
end
i = 0
until i >= 3
  i += 1
end
r += i
x = 7
if x == 1
  r += 100
elsif x == 7
  r += 10
else
  r += 1000
end
j = 0
s = 0
while j < 10
  j += 1
  if j % 2 == 0
    next
  end
  s += 1
end
r += s
__record("r", r)
)"), 1 + 3 + 10 + 5);
}

TEST(Lang, BreakLeavesLoop) {
  EXPECT_EQ(run1(R"(
i = 0
while true
  i += 1
  if i == 5
    break
  end
end
__record("r", i)
)"), 5);
}

TEST(Lang, MethodsDefaultReturnAndEarlyReturn) {
  EXPECT_EQ(run1(R"(
def last_expr(x)
  x * 2
end
def early(x)
  if x > 0
    return 1
  end
  0 - 1
end
__record("r", last_expr(3) + early(5) + early(-5))
)"), 6 + 1 - 1);
}

TEST(Lang, RecursionFibonacci) {
  EXPECT_EQ(run1(R"(
def fib(n)
  if n < 2
    n
  else
    fib(n - 1) + fib(n - 2)
  end
end
__record("r", fib(15))
)"), 610);
}

TEST(Lang, ClassesInheritanceAndSuperclassDispatch) {
  EXPECT_EQ(run1(R"(
class Animal
  def initialize(name)
    @name = name
  end
  def legs
    4
  end
  def describe
    legs * 10
  end
end
class Bird < Animal
  def legs
    2
  end
end
a = Animal.new("dog")
b = Bird.new("crow")
__record("r", a.describe + b.describe)
)"), 40 + 20);
}

TEST(Lang, UserDefinedOperators) {
  EXPECT_EQ(run1(R"(
class Vec
  def initialize(x, y)
    @x = x
    @y = y
  end
  def +(o)
    Vec.new(@x + o.x, @y + o.y)
  end
  def x
    @x
  end
  def y
    @y
  end
end
v = Vec.new(1, 2) + Vec.new(10, 20)
__record("r", v.x * 100 + v.y)
)"), 1122);
}

TEST(Lang, ClassVariablesSharedWithSubclasses) {
  EXPECT_EQ(run1(R"(
class Counter
  def initialize
    @@count = 0
  end
  def bump
    @@count = @@count + 1
  end
  def count
    @@count
  end
end
class Sub < Counter
end
a = Counter.new
a.bump
b = Sub.new
__record("r", a.count)
)"), 0) << "Sub's initialize resets the shared @@count (Ruby semantics)";
}

TEST(Lang, BlocksClosuresAndYieldArgs) {
  EXPECT_EQ(run1(R"(
def twice
  yield(1) + yield(2)
end
acc = 10
r = twice do |v|
  acc += v
  v * 100
end
__record("r", r + acc)
)"), 300 + 13);
}

TEST(Lang, NestedBlocksReachOuterLocals) {
  EXPECT_EQ(run1(R"(
total = 0
(1..3).each do |i|
  (1..2).each do |j|
    total += i * j
  end
end
__record("r", total)
)"), (1 + 2) * (1 + 2 + 3));
}

TEST(Lang, BlockGivenPredicate) {
  EXPECT_EQ(run1(R"(
def opt
  if block_given?
    yield
  else
    5
  end
end
__record("r", opt + opt do
  100
end)
)"), 105);
}

TEST(Lang, ProcCallWithinThread) {
  EXPECT_EQ(run1(R"(
counter = 0
p = Thread.new(3) do |n|
  n * n
end
p.join
__record("r", 9 + counter)
)"), 9);
}

TEST(Lang, StringsConcatIndexSliceSplit) {
  EXPECT_EQ(run_out(R"(
s = "hello" + " " + "world"
puts(s.length)
puts(s.index("world"))
puts(s.slice(0, 5))
parts = "a,b,c".split(",")
puts(parts.length)
puts(parts[1])
puts("x" == "x")
puts("GET /p HTTP".start_with?("GET"))
)"), "11\n6\nhello\n3\nb\ntrue\ntrue\n");
}

TEST(Lang, StringAppendInPlace) {
  EXPECT_EQ(run_out(R"(
s = "ab"
s << "cd"
s << "e"
puts(s)
puts(s.length)
)"), "abcde\n5\n");
}

TEST(Lang, ArraysPushPopMapSumJoin) {
  EXPECT_EQ(run_out(R"(
a = [3, 1, 2]
a.push(4)
a << 5
puts(a.length)
puts(a.pop)
puts(a.sum)
doubled = a.map do |x|
  x * 2
end
puts(doubled.join("-"))
puts(a.include?(3))
puts(a.include?(99))
puts(a.first + a.last)
)"), "5\n5\n10\n6-2-4-8\ntrue\nfalse\n7\n");
}

TEST(Lang, ArrayGrowthAndNilHoles) {
  EXPECT_EQ(run_out(R"(
a = []
a[5] = 7
puts(a.length)
puts(a[0] == nil)
puts(a[5])
a[100] = 1
puts(a.length)
)"), "6\ntrue\n7\n101\n");
}

TEST(Lang, HashesStringAndIntegerKeys) {
  EXPECT_EQ(run_out(R"(
h = Hash.new
h["one"] = 1
h[2] = "two"
h[:sym] = 3
puts(h.size)
puts(h["one"])
puts(h[2])
puts(h[:sym])
puts(h["missing"] == nil)
old = h["one"]
h["one"] = 100
puts(h["one"] + old)
i = 0
while i < 100
  h[i * 1000] = i
  i += 1
end
puts(h.size)
puts(h[55000])
)"), "3\n1\ntwo\n3\ntrue\n101\n103\n55\n");
}

TEST(Lang, HashLiteralSyntax) {
  EXPECT_EQ(run_out(R"(
h = { "a" => 1, "b" => 2 }
puts(h.size)
puts(h["b"])
)"), "2\n2\n");
}

TEST(Lang, RangesEachToASize) {
  EXPECT_EQ(run_out(R"(
r = 1..4
puts(r.first)
puts(r.last)
puts(r.size)
x = (1...4).to_a
puts(x.length)
puts(x.join(","))
)"), "1\n4\n4\n3\n1,2,3\n");
}

TEST(Lang, IteratorsTimesUptoDowntoStep) {
  EXPECT_EQ(run1(R"(
r = 0
3.times do |i|
  r += i
end
2.upto(4) do |i|
  r += i * 10
end
3.downto(1) do |i|
  r += i * 100
end
0.step(10, 5) do |i|
  r += i * 1000
end
__record("r", r)
)"), 3 + 90 + 600 + 15000);
}

TEST(Lang, GlobalsAndConstants) {
  EXPECT_EQ(run1(R"(
$g = 5
PI_ISH = 3
def read_them
  $g + PI_ISH
end
$g += 1
__record("r", read_them)
)"), 9);
}

TEST(Lang, RandAndRecordBuiltins) {
  EXPECT_EQ(run1(R"(
ok = 1
100.times do |i|
  v = rand(10)
  if v < 0 || v >= 10
    ok = 0
  end
end
__record("r", ok)
)"), 1);
}

TEST(Lang, ErrorsSurfaceAsRubyError) {
  auto expect_error = [](const std::string& src, const char* fragment) {
    auto cfg = EngineConfig::gil(htm::SystemProfile::xeon_e3());
    cfg.heap.initial_slots = 30'000;
    Engine engine(std::move(cfg));
    engine.load_program({src});
    try {
      engine.run();
      FAIL() << "expected RubyError for: " << src;
    } catch (const vm::RubyError& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("nil.frobnicate", "undefined method");
  expect_error("x = 1 / 0", "divided by 0");
  expect_error("yield", "no block given");
  expect_error("x = UNDEFINED_CONST", "uninitialized constant");
  expect_error("m = Mutex.new\nm.unlock", "not locked");
}

}  // namespace
}  // namespace gilfree
