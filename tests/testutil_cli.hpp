// Shared strict-CLI test helper (docs/ROBUSTNESS.md flag conventions).
//
// Every bench/example binary parses its flag families through from_flags
// functions that throw std::invalid_argument on semantic errors, which the
// binaries turn into `error: ...` + exit 2. The tests assert the throwing
// half: build CliFlags from one --flag=value argument and run the caller's
// parser set over it.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"

namespace gilfree::testutil {

/// CliFlags over `args` (argv[0] is synthesized) in throwing mode, so parse
/// errors surface as std::invalid_argument instead of exit(2).
inline CliFlags make_flags(std::vector<std::string> args) {
  static thread_local std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "test");
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (auto& a : storage) argv.push_back(a.data());
  return CliFlags(static_cast<int>(argv.size()), argv.data(),
                  /*throw_errors=*/true);
}

/// Asserts that `parse` rejects the single argument `flag` with
/// std::invalid_argument — the strict-CLI convention every new flag family
/// must follow.
inline void expect_rejected(const std::string& flag,
                            const std::function<void(const CliFlags&)>& parse) {
  CliFlags flags = make_flags({flag});
  EXPECT_THROW(parse(flags), std::invalid_argument) << flag;
}

}  // namespace gilfree::testutil
