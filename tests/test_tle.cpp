// TLE algorithm tests: the Fig. 3 length table in isolation, the Gil class,
// the sim machine, and engine-level TLE semantics (single-thread GIL
// reversion, transaction counts vs configured lengths, dynamic shrinkage
// under conflicts, atomicity as a property over engines).
#include <gtest/gtest.h>

#include "gil/gil.hpp"
#include "runtime/engine.hpp"
#include "sim/machine.hpp"
#include "tle/length_table.hpp"

namespace gilfree {
namespace {

using runtime::Engine;
using runtime::EngineConfig;

// --- Fig. 3 length table ----------------------------------------------------

tle::TleConfig dynamic_config() {
  tle::TleConfig c;
  c.fixed_length = -1;
  c.initial_transaction_length = 255;
  c.profiling_period = 300;
  c.adjustment_threshold = 3;
  c.attenuation_rate = 0.75;
  return c;
}

TEST(LengthTable, InitializesLazilyTo255) {
  tle::LengthTable t(4, dynamic_config());
  EXPECT_EQ(t.set_transaction_length(0), 255u);
  EXPECT_EQ(t.length(0), 255u);
  EXPECT_EQ(t.length(3), 255u);  // uninitialized reads report the default
}

TEST(LengthTable, FixedModeIgnoresAdjustment) {
  auto cfg = dynamic_config();
  cfg.fixed_length = 16;
  tle::LengthTable t(4, cfg);
  EXPECT_EQ(t.set_transaction_length(0), 16u);
  for (int i = 0; i < 100; ++i) t.adjust_transaction_length(0);
  EXPECT_EQ(t.set_transaction_length(0), 16u);
  EXPECT_EQ(t.adjustments(), 0u);
}

TEST(LengthTable, ShortensAfterThresholdExceeded) {
  tle::LengthTable t(4, dynamic_config());
  (void)t.set_transaction_length(0);
  // ADJUSTMENT_THRESHOLD = 3: the first 4 aborted transactions only count
  // (Fig. 3 lines 16-17); the 5th crosses the threshold and shortens.
  for (int i = 0; i < 4; ++i) t.adjust_transaction_length(0);
  EXPECT_EQ(t.length(0), 255u);
  t.adjust_transaction_length(0);
  EXPECT_EQ(t.length(0), static_cast<u32>(255 * 0.75));
  EXPECT_EQ(t.adjustments(), 1u);
}

TEST(LengthTable, ConvergesToMinimumUnderSustainedAborts) {
  tle::LengthTable t(2, dynamic_config());
  for (int round = 0; round < 2'000; ++round) {
    (void)t.set_transaction_length(0);
    t.adjust_transaction_length(0);
  }
  EXPECT_EQ(t.length(0), 1u);
  EXPECT_EQ(t.length(1), 255u) << "other yield points are unaffected";
  EXPECT_GT(t.fraction_at_length_one(), 0.99);
}

TEST(LengthTable, StopsAdjustingAfterProfilingPeriod) {
  auto cfg = dynamic_config();
  cfg.profiling_period = 10;
  cfg.adjustment_threshold = 3;
  tle::LengthTable t(2, cfg);
  // Reach steady state: more than PROFILING_PERIOD transactions with few
  // aborts.
  for (int i = 0; i < 20; ++i) (void)t.set_transaction_length(0);
  const u32 before = t.length(0);
  for (int i = 0; i < 50; ++i) t.adjust_transaction_length(0);
  EXPECT_EQ(t.length(0), before)
      << "no shortening once the profiling period has elapsed (Fig. 3 l.14)";
}

TEST(LengthTable, PseudoYieldPointForThreadStart) {
  tle::LengthTable t(4, dynamic_config());
  EXPECT_EQ(t.set_transaction_length(-1), 255u);  // does not throw
}

// --- Yield-point quarantine (circuit breaker; docs/ROBUSTNESS.md) -----------

tle::TleConfig quarantine_config() {
  auto c = dynamic_config();
  c.quarantine_enabled = true;
  c.quarantine_abort_streak = 6;
  c.quarantine_probe_initial = 2;
  c.quarantine_probe_max = 8;
  c.initial_transaction_length = 1;  // every abort is a floor-length abort
  return c;
}

/// Aborts `n` transactions at `yp`; returns true if one tripped the breaker.
bool abort_n(tle::LengthTable& t, i32 yp, int n) {
  bool entered = false;
  for (int i = 0; i < n; ++i) {
    (void)t.set_transaction_length(yp);
    entered = t.adjust_transaction_length(yp).entered_quarantine || entered;
  }
  return entered;
}

TEST(Quarantine, FloorAbortStreakTripsTheBreaker) {
  tle::LengthTable t(4, quarantine_config());
  EXPECT_FALSE(abort_n(t, 0, 5)) << "below the streak threshold";
  EXPECT_TRUE(abort_n(t, 0, 1)) << "the 6th consecutive floor abort trips";
  EXPECT_TRUE(t.quarantined(0));
  EXPECT_FALSE(t.quarantined(1)) << "quarantine is per yield point";
  EXPECT_EQ(t.quarantine_enters(), 1u);
  EXPECT_EQ(t.quarantine_enters_at(0), 1u);
  EXPECT_EQ(t.begin_route(1), tle::Route::kHtm);
}

TEST(Quarantine, CommitResetsTheAbortStreak) {
  tle::LengthTable t(4, quarantine_config());
  EXPECT_FALSE(abort_n(t, 0, 5));
  EXPECT_FALSE(t.on_commit(0)) << "a healthy commit is not a probe exit";
  EXPECT_FALSE(abort_n(t, 0, 5)) << "the streak restarted at the commit";
  EXPECT_FALSE(t.quarantined(0));
}

TEST(Quarantine, ProbesOnExponentialBackoffAndExitsOnCommit) {
  tle::LengthTable t(4, quarantine_config());
  ASSERT_TRUE(abort_n(t, 0, 6));

  // probe_initial = 2 GIL slices, then one minimum-length HTM probe.
  EXPECT_EQ(t.begin_route(0), tle::Route::kGil);
  EXPECT_EQ(t.begin_route(0), tle::Route::kGil);
  EXPECT_EQ(t.begin_route(0), tle::Route::kProbe);
  EXPECT_EQ(t.quarantine_probes(), 1u);

  // The probe aborts: backoff doubles to 4, then 8, then caps at 8.
  for (const int gap : {4, 8, 8}) {
    EXPECT_TRUE(t.adjust_transaction_length(0).probe_failed);
    for (int i = 0; i < gap; ++i)
      EXPECT_EQ(t.begin_route(0), tle::Route::kGil) << "gap " << gap;
    EXPECT_EQ(t.begin_route(0), tle::Route::kProbe);
  }

  // A committing probe leaves quarantine.
  EXPECT_TRUE(t.on_commit(0));
  EXPECT_FALSE(t.quarantined(0));
  EXPECT_EQ(t.quarantine_exits(), 1u);
  EXPECT_EQ(t.quarantine_exits_at(0), 1u);
  EXPECT_EQ(t.begin_route(0), tle::Route::kHtm);
}

TEST(Quarantine, ExitRestartsTheLengthEntryFromScratch) {
  auto cfg = dynamic_config();
  cfg.quarantine_enabled = true;
  cfg.quarantine_abort_streak = 6;
  cfg.quarantine_probe_initial = 1;
  tle::LengthTable t(2, cfg);
  // Drive the Fig. 3 entry down to the floor, then through quarantine.
  for (int round = 0; round < 2'000 && !t.quarantined(0); ++round) {
    (void)t.set_transaction_length(0);
    (void)t.adjust_transaction_length(0);
  }
  ASSERT_TRUE(t.quarantined(0));
  EXPECT_EQ(t.length(0), 1u);
  EXPECT_EQ(t.begin_route(0), tle::Route::kGil);
  EXPECT_EQ(t.begin_route(0), tle::Route::kProbe);
  ASSERT_TRUE(t.on_commit(0));
  EXPECT_EQ(t.set_transaction_length(0), 255u)
      << "the length re-learns from INITIAL_TRANSACTION_LENGTH after exit";
}

TEST(Quarantine, DisabledConfigNeverRoutesAwayFromHtm) {
  auto cfg = quarantine_config();
  cfg.quarantine_enabled = false;
  tle::LengthTable t(2, cfg);
  EXPECT_FALSE(abort_n(t, 0, 100));
  EXPECT_EQ(t.begin_route(0), tle::Route::kHtm);
  EXPECT_EQ(t.quarantine_enters(), 0u);
}

// --- Gil ---------------------------------------------------------------------

TEST(Gil, AcquireReleaseAndWaiters) {
  u64 word = 0;
  gil::Gil g(&word, nullptr);
  EXPECT_FALSE(g.is_acquired());
  EXPECT_TRUE(g.try_acquire(0, 7, 100));
  EXPECT_TRUE(g.is_acquired());
  EXPECT_EQ(g.owner_tid(), 7);
  EXPECT_FALSE(g.try_acquire(1, 8, 110));
  g.enqueue_waiter(8);
  g.enqueue_waiter(9);
  g.enqueue_waiter(8);  // duplicate ignored
  EXPECT_EQ(g.num_waiters(), 2u);
  EXPECT_EQ(g.release(0, 7, 200), 8);
  EXPECT_FALSE(g.is_acquired());
  g.remove_waiter(8);
  EXPECT_EQ(g.head_waiter(), 9);
  EXPECT_EQ(g.stats().acquisitions, 1u);
  EXPECT_EQ(g.stats().contended_acquisitions, 2u);
  EXPECT_EQ(g.stats().held_cycles, 100u);
}

// --- sim::Machine --------------------------------------------------------------

TEST(Machine, ClocksAndSmtContention) {
  sim::Machine m(sim::xeon_e3_machine());  // 4 cores x 2 SMT
  EXPECT_EQ(m.num_cpus(), 8u);
  EXPECT_EQ(m.sibling_of(0), 4u);
  EXPECT_EQ(m.sibling_of(5), 1u);
  EXPECT_EQ(m.core_of(0), m.core_of(4));

  m.set_busy(0, true);
  EXPECT_EQ(m.advance(0, 100), 100u) << "no contention: sibling idle";
  m.set_busy(4, true);
  EXPECT_GT(m.advance(0, 100), 100u) << "SMT contention inflates cost";
  m.advance_to(2, 5'000);
  EXPECT_EQ(m.clock(2), 5'000u);
  m.advance_to(2, 100);  // never moves backward
  EXPECT_EQ(m.clock(2), 5'000u);
  EXPECT_GE(m.global_time(), 5'000u);
}

TEST(Machine, NoSmtOnZec12) {
  sim::Machine m(sim::zec12_machine());
  EXPECT_EQ(m.num_cpus(), 12u);
  EXPECT_EQ(m.sibling_of(3), kInvalidCpu);
  EXPECT_EQ(m.config().line_bytes, 256u);
}

// --- engine-level TLE semantics -------------------------------------------------

TEST(TleEngine, SingleThreadRevertsToGil) {
  // Fig. 1 lines 2-3: with one live thread the GIL is kept — no
  // transactions at all.
  auto cfg = EngineConfig::htm_dynamic(htm::SystemProfile::zec12());
  cfg.heap.initial_slots = 30'000;
  Engine engine(std::move(cfg));
  engine.load_program({R"(
x = 0
i = 0
while i < 5000
  x += i
  i += 1
end
__record("x", x)
)"});
  const auto stats = engine.run();
  EXPECT_EQ(stats.htm.begins, 0u);
  EXPECT_DOUBLE_EQ(stats.results.at("x"), 5000.0 * 4999.0 / 2.0);
}

TEST(TleEngine, ShorterFixedLengthsBeginMoreTransactions) {
  auto run_with = [](i32 len) {
    auto cfg = EngineConfig::htm_fixed(htm::SystemProfile::zec12(), len);
    cfg.heap.initial_slots = 60'000;
    Engine engine(std::move(cfg));
    engine.load_program({R"(
ts = []
2.times do |i|
  ts << Thread.new(i) do |tid|
    x = 0
    k = 0
    while k < 3000
      x += k
      k += 1
    end
    __record("x" + tid.to_s, x)
  end
end
ts.each do |t|
  t.join
end
)"});
    return engine.run();
  };
  const auto s1 = run_with(1);
  const auto s16 = run_with(16);
  const auto s256 = run_with(256);
  EXPECT_GT(s1.htm.begins, s16.htm.begins * 8);
  EXPECT_GT(s16.htm.begins, s256.htm.begins * 8);
  EXPECT_DOUBLE_EQ(s1.results.at("x0"), 3000.0 * 2999.0 / 2.0);
  EXPECT_DOUBLE_EQ(s256.results.at("x1"), 3000.0 * 2999.0 / 2.0);
}

TEST(TleEngine, DynamicShrinksHotYieldPointsUnderConflicts) {
  // Two threads hammering one shared counter through a Mutex: heavy
  // conflicts force the adjuster to shorten lengths.
  auto cfg = EngineConfig::htm_dynamic(htm::SystemProfile::zec12());
  cfg.heap.initial_slots = 60'000;
  Engine engine(std::move(cfg));
  engine.load_program({R"(
$m = Mutex.new
$c = 0
ts = []
2.times do |i|
  ts << Thread.new(i) do |tid|
    2000.times do |k|
      $m.synchronize do
        $c += 1
      end
    end
  end
end
ts.each do |t|
  t.join
end
__record("c", $c)
)"});
  const auto stats = engine.run();
  EXPECT_DOUBLE_EQ(stats.results.at("c"), 4000.0);
  EXPECT_GT(stats.length_adjustments, 0u);
  EXPECT_GT(stats.fraction_length_one, 0.0);
}

TEST(TleEngine, CycleBreakdownCoversRun) {
  auto cfg = EngineConfig::htm_fixed(htm::SystemProfile::zec12(), 16);
  cfg.heap.initial_slots = 60'000;
  Engine engine(std::move(cfg));
  engine.load_program({R"(
ts = []
3.times do |i|
  ts << Thread.new(i) do |tid|
    x = 0.0
    k = 0
    while k < 1500
      x = x + 1.5
      k += 1
    end
  end
end
ts.each do |t|
  t.join
end
__record("done", 1)
)"});
  const auto stats = engine.run();
  const auto& b = stats.breakdown;
  EXPECT_GT(b.tx_success, 0u);
  EXPECT_GT(b.begin_end, 0u);
  // The breakdown accounts for a dominant share of machine time across all
  // CPUs (some idle time on unused CPUs is expected).
  EXPECT_GT(b.total(), stats.total_cycles / 2);
}

// Atomicity property: a mutex-protected read-modify-write ends exactly right
// across every engine/machine/length combination.
struct AtomicityParam {
  const char* name;
  i32 fixed_length;  // 0 GIL, -1 dynamic
  bool xeon;
  unsigned threads;
};

class Atomicity : public ::testing::TestWithParam<AtomicityParam> {};

TEST_P(Atomicity, MutexCounterIsExact) {
  const auto& p = GetParam();
  const auto profile =
      p.xeon ? htm::SystemProfile::xeon_e3() : htm::SystemProfile::zec12();
  EngineConfig cfg = p.fixed_length == 0
                         ? EngineConfig::gil(profile)
                         : (p.fixed_length < 0
                                ? EngineConfig::htm_dynamic(profile)
                                : EngineConfig::htm_fixed(profile,
                                                          p.fixed_length));
  cfg.heap.initial_slots = 80'000;
  Engine engine(std::move(cfg));
  const std::string src = "$m = Mutex.new\n$c = 0\nts = []\n" +
                          std::to_string(p.threads) + R"(.times do |i|
  ts << Thread.new(i) do |tid|
    500.times do |k|
      $m.synchronize do
        $c += 1
      end
    end
  end
end
ts.each do |t|
  t.join
end
__record("c", $c)
)";
  engine.load_program({src});
  const auto stats = engine.run();
  EXPECT_DOUBLE_EQ(stats.results.at("c"), 500.0 * p.threads) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Engines, Atomicity,
    ::testing::Values(AtomicityParam{"gil-z-4", 0, false, 4},
                      AtomicityParam{"htm1-z-4", 1, false, 4},
                      AtomicityParam{"htm16-z-8", 16, false, 8},
                      AtomicityParam{"htm256-z-4", 256, false, 4},
                      AtomicityParam{"dyn-z-12", -1, false, 12},
                      AtomicityParam{"htm16-x-8", 16, true, 8},
                      AtomicityParam{"dyn-x-8", -1, true, 8}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (char& ch : n)
        if (ch == '-') ch = '_';
      return n;
    });

}  // namespace
}  // namespace gilfree
