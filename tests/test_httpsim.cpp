// Unit tests of the closed-loop HTTP client driver and the thread-local
// sweep heap extension.
#include <gtest/gtest.h>

#include "httpsim/client_driver.hpp"
#include "runtime/engine.hpp"

namespace gilfree {
namespace {

TEST(ClientDriver, ClosedLoopIssuance) {
  httpsim::DriverConfig d;
  d.clients = 2;
  d.total_requests = 5;
  d.client_turnaround = 1'000;
  httpsim::ClosedLoopDriver driver(d);

  // Two first-wave requests, staggered.
  EXPECT_EQ(driver.accept(0), 0);
  EXPECT_EQ(driver.accept(50), -1) << "second arrival is at t=100";
  EXPECT_EQ(driver.accept(100), 1);
  EXPECT_EQ(driver.accept(100), -1);
  EXPECT_FALSE(driver.shutdown(100));

  const std::string payload = driver.payload(0);
  EXPECT_NE(payload.find("GET /index.html"), std::string::npos);
  EXPECT_NE(payload.find("User-Agent"), std::string::npos);

  // Responding schedules the next request one turnaround later.
  driver.respond(0, "resp0", 500);
  EXPECT_EQ(driver.accept(500), -1);
  EXPECT_EQ(driver.accept(1'500), 2);
  driver.respond(1, "resp1", 600);
  driver.respond(2, "resp2", 1'600);
  EXPECT_EQ(driver.accept(1'700), 3);
  EXPECT_EQ(driver.accept(1'700), -1) << "request 4 arrives at 2600";
  EXPECT_EQ(driver.accept(2'600), 4);
  driver.respond(3, "resp3", 1'800);
  driver.respond(4, "resp4", 2'900);

  EXPECT_TRUE(driver.shutdown(3'000));
  EXPECT_EQ(driver.completed(), 5u);
  EXPECT_EQ(driver.issued(), 5u);
  EXPECT_EQ(driver.last_response_time(), 2'900u);
  EXPECT_GT(driver.throughput_rps(3.5), 0.0);
  EXPECT_EQ(driver.response_bytes(), 5 * 5u);
}

TEST(ClientDriver, PathsCycle) {
  httpsim::DriverConfig d;
  d.clients = 1;
  d.total_requests = 3;
  d.paths = {"/a", "/b"};
  httpsim::ClosedLoopDriver driver(d);
  EXPECT_NE(driver.payload(0).find("GET /a "), std::string::npos);
  (void)driver.accept(0);
  driver.respond(0, "x", 10);
  EXPECT_NE(driver.payload(1).find("GET /b "), std::string::npos);
}

TEST(ThreadLocalSweep, KeepsProgramsCorrectUnderGcPressure) {
  // The §7 extension must not change results — only conflict behaviour.
  auto run_with = [](bool tls_sweep) {
    auto cfg = runtime::EngineConfig::htm_fixed(htm::SystemProfile::zec12(),
                                                16);
    cfg.heap.initial_slots = 6'000;
    cfg.heap.thread_local_sweep = tls_sweep;
    cfg.heap.sweep_deal_threads = 4;
    runtime::Engine engine(std::move(cfg));
    engine.load_program({R"(
ts = []
3.times do |i|
  ts << Thread.new(i) do |tid|
    acc = 0.0
    k = 0
    while k < 4000
      acc = acc + 0.5
      k += 1
    end
    __record("acc" + tid.to_s, acc)
  end
end
ts.each do |t|
  t.join
end
)"});
    return engine.run();
  };
  const auto off = run_with(false);
  const auto on = run_with(true);
  for (const char* key : {"acc0", "acc1", "acc2"}) {
    EXPECT_DOUBLE_EQ(off.results.at(key), 2000.0);
    EXPECT_DOUBLE_EQ(on.results.at(key), 2000.0);
  }
  EXPECT_GT(on.gc.collections, 0u);
}

}  // namespace
}  // namespace gilfree
