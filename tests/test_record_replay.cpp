// Record/replay round-trip tests (satellites of the guest-address PR):
// a recorded abort storm replays to the identical event stream, summary,
// and bisect verdict across repeated replays; time-travel stops produce
// exact prefixes; heap labels (arena-steal, nursery) survive the
// guest-address rebase; and the --record-*/--addr-* flag families follow
// the strict-CLI convention.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "fault/fault_config.hpp"
#include "htm/profile.hpp"
#include "obs/record.hpp"
#include "runtime/engine.hpp"
#include "stm/stm_config.hpp"
#include "testutil_cli.hpp"
#include "workloads/replay.hpp"
#include "workloads/runner.hpp"
#include "workloads/workload.hpp"

using namespace gilfree;

namespace {

/// Records one abort storm (spurious faults + the lazy STM tier on
/// HTM-dynamic) to `path` and returns the parsed run. The cell mirrors the
/// chaos matrix's spurious-lazy phase, which is rich in conflict aborts.
obs::RecordedRun record_storm(const std::string& path, unsigned threads,
                              unsigned scale) {
  const workloads::Workload& w = workloads::micro_while();
  runtime::EngineConfig cfg =
      runtime::EngineConfig::htm_dynamic(htm::SystemProfile::zec12());
  cfg.fault.seed = 20260808;
  cfg.fault.spurious_mean_cycles = 50'000;
  cfg.stm.enabled = true;
  cfg.stm.subscription = stm::GilSubscription::kLazy;

  obs::RecordConfig rc;
  rc.path = path;
  obs::RunRecorder rec(rc);
  rec.begin_run(
      workloads::make_scenario(w.name, cfg.profile.machine.name,
                               "HTM-dynamic", threads, scale, cfg.seed),
      workloads::replay_flags(cfg.fault, cfg.stm, nullptr));
  cfg.recorder = &rec;
  runtime::Engine engine(std::move(cfg));
  engine.load_program(workloads::sources_for(w, threads, scale));
  engine.run();
  rec.flush();

  const auto runs = obs::parse_record_file(path);
  EXPECT_EQ(runs.size(), 1u);
  return runs.at(0);
}

TEST(RecordReplay, StormReplaysToIdenticalStreamSummaryAndTotals) {
  const std::string path = testing::TempDir() + "storm.rec";
  const obs::RecordedRun recorded = record_storm(path, 4, 1);
  ASSERT_FALSE(recorded.events.empty());
  ASSERT_FALSE(recorded.summary.empty());

  const workloads::ReplayOutcome a = workloads::replay_run(recorded);
  EXPECT_EQ(workloads::diff_events(recorded.events, a.events), "");
  EXPECT_EQ(a.summary, recorded.summary);
  EXPECT_EQ(a.total_events, recorded.total_events);
  EXPECT_FALSE(a.stopped_early);

  // Replaying the replay: the second pass must agree with the first in
  // every byte-visible dimension.
  const workloads::ReplayOutcome b = workloads::replay_run(recorded);
  EXPECT_EQ(workloads::diff_events(a.events, b.events), "");
  EXPECT_EQ(a.summary, b.summary);
  EXPECT_EQ(a.gaddr_labels, b.gaddr_labels);
}

TEST(RecordReplay, StormCarriesConflictGuestAddressesWithSourceLines) {
  const std::string path = testing::TempDir() + "storm_addr.rec";
  const obs::RecordedRun recorded = record_storm(path, 4, 1);
  u64 conflicts_with_gaddr = 0;
  for (const obs::RecordEvent& ev : recorded.events) {
    if (ev.kind != obs::RecordKind::kAbort || ev.gaddr == 0) continue;
    ++conflicts_with_gaddr;
    // Guest addresses are segment-biased: segment index 0 maps to window 1.
    EXPECT_GE(ev.gaddr >> 32, 1u);
    EXPECT_GT(ev.src_line, 0u) << "conflict abort without a source line";
  }
  EXPECT_GT(conflicts_with_gaddr, 0u) << "storm produced no conflict aborts";
}

TEST(RecordReplay, TimeTravelStopYieldsExactPrefix) {
  const std::string path = testing::TempDir() + "storm_until.rec";
  const obs::RecordedRun recorded = record_storm(path, 4, 1);
  ASSERT_GT(recorded.events.size(), 100u);
  const u64 stop = recorded.events.size() / 2;

  const workloads::ReplayOutcome partial = workloads::replay_run(recorded,
                                                                 stop);
  EXPECT_TRUE(partial.stopped_early);
  // The engine stops at the first scheduling boundary past the stop event,
  // so the prefix may overshoot by part of one burst — but never diverge.
  ASSERT_GE(partial.events.size(), stop);
  ASSERT_LE(partial.events.size(), recorded.events.size());
  const std::vector<obs::RecordEvent> head(
      recorded.events.begin(),
      recorded.events.begin() +
          static_cast<std::ptrdiff_t>(partial.events.size()));
  EXPECT_EQ(workloads::diff_events(head, partial.events), "");
}

TEST(RecordReplay, BisectVerdictIsStableAcrossRepeatedBisects) {
  const std::string path = testing::TempDir() + "storm_bisect.rec";
  const obs::RecordedRun recorded = record_storm(path, 4, 1);

  const workloads::BisectResult a =
      workloads::bisect_first_conflict(recorded);
  ASSERT_TRUE(a.found) << "storm produced no conflict aborts";
  EXPECT_TRUE(a.confirmed) << a.error;
  EXPECT_GT(a.gaddr, 0u);
  EXPECT_GT(a.src_line, 0u);
  EXPECT_GT(a.probes, 0u);
  EXPECT_FALSE(a.label.empty());
  EXPECT_NE(a.label, "unregistered");

  const workloads::BisectResult b =
      workloads::bisect_first_conflict(recorded);
  EXPECT_EQ(b.event_no, a.event_no);
  EXPECT_EQ(b.gaddr, a.gaddr);
  EXPECT_EQ(b.src_line, a.src_line);
  EXPECT_EQ(b.label, a.label);
  EXPECT_TRUE(b.confirmed);
}

TEST(RecordReplay, ReplayRejectsTamperedScenario) {
  const std::string path = testing::TempDir() + "storm_tamper.rec";
  obs::RecordedRun recorded = record_storm(path, 2, 1);
  obs::RecordedRun bad = recorded;
  bad.scenario["workload"] = "NoSuchKernel";
  EXPECT_THROW(workloads::replay_run(bad), std::invalid_argument);
  bad = recorded;
  bad.scenario.erase("seed");
  EXPECT_THROW(workloads::replay_run(bad), std::runtime_error);
  bad = recorded;
  bad.scenario["config"] = "HTM-notanumber";
  EXPECT_THROW(workloads::replay_run(bad), std::exception);
}

// --- satellite: heap labels survive the guest-address rebase --------------
// (The nursery/arena-steal unit-level regression lives in test_heap_gc.cpp,
// next to the host-mode label tests; this is the whole-engine check.)

TEST(RecordReplay, ConflictLinesResolveToHeapLabelsInGuestMode) {
  const workloads::Workload& w = workloads::npb("BT");
  runtime::EngineConfig cfg =
      runtime::EngineConfig::htm_fixed(htm::SystemProfile::zec12(), 16);
  ASSERT_EQ(cfg.addr_mode, runtime::AddrMode::kGuest);  // the default

  runtime::Engine engine(std::move(cfg));
  engine.load_program(workloads::sources_for(w, 4, 1));
  engine.htm()->set_collect_conflicts(true);
  engine.run();

  const u64 line_bytes = engine.config().profile.htm.line_bytes;
  // Every address the engine touched translated (no coverage gap), and
  // every conflict line resolves to a named region — never the host-tagged
  // fallback and never the catch-all.
  EXPECT_EQ(engine.guest_space().unregistered_accesses(), 0u);
  ASSERT_FALSE(engine.htm()->conflict_lines().empty());
  for (const auto& [line, n] : engine.htm()->conflict_lines()) {
    (void)n;
    const std::string label = engine.heap().describe_line(line, line_bytes);
    EXPECT_NE(label, "unregistered") << "line " << line;
    EXPECT_NE(label, "other") << "line " << line;
  }
}

// --- satellite: strict CLI for the new flag families ----------------------

TEST(RecordReplayCli, RecordFlagsRejectMalformedValues) {
  const auto parse = [](const CliFlags& f) { obs::RecordConfig::from_flags(f); };
  testutil::expect_rejected("--record-limit=0", parse);
  testutil::expect_rejected("--record-limit=-5", parse);
  testutil::expect_rejected("--record-limit=abc", parse);
}

TEST(RecordReplayCli, RecordFlagsParseValidValues) {
  const CliFlags flags = testutil::make_flags(
      {"--record-out=/tmp/r.rec", "--record-limit=123"});
  const obs::RecordConfig rc = obs::RecordConfig::from_flags(flags);
  EXPECT_TRUE(rc.enabled());
  EXPECT_EQ(rc.path, "/tmp/r.rec");
  EXPECT_EQ(rc.limit, 123u);
  EXPECT_NO_THROW(flags.reject_unknown());
}

TEST(RecordReplayCli, AddrModeRejectsUnknownModes) {
  const auto parse = [](const CliFlags& f) {
    runtime::EngineConfig cfg;
    runtime::apply_addr_flags(f, cfg);
  };
  testutil::expect_rejected("--addr-mode=virtual", parse);
  testutil::expect_rejected("--addr-mode=", parse);
}

TEST(RecordReplayCli, AddrModeParsesGuestAndHost) {
  runtime::EngineConfig cfg;
  runtime::apply_addr_flags(testutil::make_flags({"--addr-mode=host"}), cfg);
  EXPECT_EQ(cfg.addr_mode, runtime::AddrMode::kHost);
  runtime::apply_addr_flags(testutil::make_flags({"--addr-mode=guest"}), cfg);
  EXPECT_EQ(cfg.addr_mode, runtime::AddrMode::kGuest);
}

TEST(RecordReplayCli, FaultAndStmFlagsRoundTripThroughToFlags) {
  // replay_flags feeds recorded headers; from_flags(to_flags(x)) == x is
  // what makes a replayed engine identical to the recorded one.
  fault::FaultConfig fc;
  fc.seed = 987;
  fc.spurious_mean_cycles = 50'000;
  fc.persistent_all_yps = true;
  fc.capacity_factor = 0.25;
  stm::StmConfig sc;
  sc.enabled = true;
  sc.subscription = stm::GilSubscription::kLazy;
  sc.commit_retry_max = 7;

  std::vector<std::string> args = fc.to_flags();
  for (std::string& f : sc.to_flags()) args.push_back(std::move(f));
  const CliFlags flags = testutil::make_flags(std::move(args));
  const fault::FaultConfig fc2 = fault::FaultConfig::from_flags(flags);
  const stm::StmConfig sc2 = stm::StmConfig::from_flags(flags);
  EXPECT_NO_THROW(flags.reject_unknown());

  EXPECT_EQ(fc2.seed, fc.seed);
  EXPECT_EQ(fc2.spurious_mean_cycles, fc.spurious_mean_cycles);
  EXPECT_EQ(fc2.persistent_all_yps, fc.persistent_all_yps);
  EXPECT_DOUBLE_EQ(fc2.capacity_factor, fc.capacity_factor);
  EXPECT_EQ(sc2.enabled, sc.enabled);
  EXPECT_EQ(sc2.subscription, sc.subscription);
  EXPECT_EQ(sc2.commit_retry_max, sc.commit_retry_max);
}

}  // namespace
