// Unit tests of the common utilities: deterministic RNG, statistics,
// string helpers, CLI parsing, table rendering.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strutil.hpp"
#include "common/table.hpp"

namespace gilfree {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(7);
  for (u64 bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximately) {
  Rng r(11);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(1000.0);
  EXPECT_NEAR(sum / n, 1000.0, 25.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng fresh(5);
  (void)fresh.next_u64();  // account for split's own draw
  EXPECT_NE(child.next_u64(), fresh.next_u64());
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bucket_count(0), 10u);
  EXPECT_EQ(h.underflow(), 0u);
  h.add(-5);
  h.add(1000);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
}

TEST(CounterMap, AddAndTotal) {
  CounterMap c;
  c.add("x");
  c.add("x", 4);
  c.add("y", 2);
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("missing"), 0u);
  EXPECT_EQ(c.total(), 7u);
}

TEST(StrUtil, SplitTrimPrefixes) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

TEST(Cli, ParsesFlagsAndRejectsUnknown) {
  const char* argv[] = {"prog", "--threads=12", "--fast", "pos",
                        "--ratio=0.5"};
  CliFlags flags(5, const_cast<char**>(argv), /*throw_errors=*/true);
  EXPECT_EQ(flags.get_int("threads", 1), 12);
  EXPECT_TRUE(flags.get_bool("fast", false));
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0.0), 0.5);
  EXPECT_EQ(flags.get("missing", "d"), "d");
  EXPECT_EQ(flags.positional().count("pos"), 1u);
  EXPECT_NO_THROW(flags.reject_unknown());

  const char* argv2[] = {"prog", "--tpyo=1"};
  CliFlags flags2(2, const_cast<char**>(argv2), /*throw_errors=*/true);
  EXPECT_THROW(flags2.reject_unknown(), std::invalid_argument);
}

TEST(Cli, RejectsMalformedFlagsAndValues) {
  // Single-dash flags are an error, not a silent positional.
  const char* dash[] = {"prog", "-threads=12"};
  EXPECT_THROW(CliFlags(2, const_cast<char**>(dash), /*throw_errors=*/true),
               std::invalid_argument);

  // An empty flag name is an error.
  const char* empty[] = {"prog", "--=3"};
  EXPECT_THROW(CliFlags(2, const_cast<char**>(empty), /*throw_errors=*/true),
               std::invalid_argument);

  // Negative numbers remain positionals (not misread as flags).
  const char* neg[] = {"prog", "-3"};
  CliFlags negf(2, const_cast<char**>(neg), /*throw_errors=*/true);
  EXPECT_EQ(negf.positional().count("-3"), 1u);

  // Non-numeric values for numeric getters are an error, including
  // trailing garbage that strtol/strtod would silently accept.
  const char* bad[] = {"prog", "--threads=twelve", "--ratio=0.5x",
                       "--seed=12"};
  CliFlags badf(4, const_cast<char**>(bad), /*throw_errors=*/true);
  EXPECT_THROW(badf.get_int("threads", 1), std::invalid_argument);
  EXPECT_THROW(badf.get_double("ratio", 0.0), std::invalid_argument);
  EXPECT_EQ(badf.get_int("seed", 0), 12);
  EXPECT_EQ(badf.get("threads", ""), "twelve");  // get() is still fine
}

TEST(Table, AlignedAndCsv) {
  TablePrinter t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,bb\n1,2\n333,4\n");
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(Check, ThrowsWithMessage) {
  try {
    GILFREE_CHECK_MSG(1 == 2, "value was " << 42);
    FAIL();
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace gilfree
