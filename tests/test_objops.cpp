// Direct unit tests of objops (string/array/hash primitives) and the
// class registry (method lookup, ivar shape tables — the §4.4 cache-guard
// machinery).
#include <gtest/gtest.h>

#include "vm/class_registry.hpp"
#include "vm/heap.hpp"
#include "vm/objops.hpp"
#include "vm/symbol.hpp"

namespace gilfree::vm {
namespace {

class NullHost : public Host {
 public:
  u64 mem_load(const u64* p, bool) override { return *p; }
  void mem_store(u64* p, u64 v, bool) override { *p = v; }
  void charge(Cycles) override {}
  void require_nontx(const char*) override {}
  void full_gc() override { FAIL() << "unexpected GC in objops test"; }
  u32 current_tid() override { return 0; }
  Value spawn_thread(Value, std::vector<Value>) override {
    return Value::nil();
  }
  bool thread_finished(u32) override { return true; }
  void write_stdout(std::string_view) override {}
  u64 random_u64() override { return 0; }
  void record_result(std::string_view, double) override {}
  Cycles now_cycles() override { return 0; }
};

struct Fixture : public ::testing::Test {
  Fixture() : heap(make_config()) {}
  static HeapConfig make_config() {
    HeapConfig c;
    c.initial_slots = 20'000;
    c.max_threads = 2;
    return c;
  }
  NullHost host;
  Heap heap;
};

using ObjOps = Fixture;

TEST_F(ObjOps, StringRoundTripAndHashEquality) {
  const Value a = heap.new_string(host, "hello world, this spans >8 bytes");
  const Value b = heap.new_string(host, "hello world, this spans >8 bytes");
  const Value c = heap.new_string(host, "hello world, this spans >8 bytesX");
  EXPECT_EQ(objops::string_to_cpp(host, a.obj()),
            "hello world, this spans >8 bytes");
  EXPECT_TRUE(objops::string_eq(host, a.obj(), b.obj()));
  EXPECT_FALSE(objops::string_eq(host, a.obj(), c.obj()));
  EXPECT_EQ(objops::string_hash(host, a.obj()),
            objops::string_hash(host, b.obj()));
  EXPECT_NE(objops::string_hash(host, a.obj()),
            objops::string_hash(host, c.obj()));
}

TEST_F(ObjOps, StringAppendAcrossWordBoundaries) {
  const Value s = heap.new_string(host, "abc");
  for (int i = 0; i < 10; ++i) {
    const Value piece = heap.new_string(host, std::to_string(i) + "xy");
    objops::string_append(host, heap, s.obj(), piece.obj());
  }
  std::string expected = "abc";
  for (int i = 0; i < 10; ++i) expected += std::to_string(i) + "xy";
  EXPECT_EQ(objops::string_to_cpp(host, s.obj()), expected);
  EXPECT_EQ(objops::string_len(host, s.obj()),
            static_cast<i64>(expected.size()));
}

TEST_F(ObjOps, StringIndexAndSliceEdgeCases) {
  const Value s = heap.new_string(host, "GET /index.html HTTP/1.1");
  const Value space = heap.new_string(host, " ");
  EXPECT_EQ(objops::string_index(host, s.obj(), space.obj(), 0), 3);
  EXPECT_EQ(objops::string_index(host, s.obj(), space.obj(), 4), 15);
  EXPECT_EQ(objops::string_index(host, s.obj(), space.obj(), 100), -1);
  const Value path = objops::string_slice(host, heap, s.obj(), 4, 11);
  EXPECT_EQ(objops::string_to_cpp(host, path.obj()), "/index.html");
  EXPECT_TRUE(objops::string_slice(host, heap, s.obj(), 999, 1).is_nil());
  const Value neg = objops::string_slice(host, heap, s.obj(), -3, 3);
  EXPECT_EQ(objops::string_to_cpp(host, neg.obj()), "1.1");
}

TEST_F(ObjOps, ArraySetGrowsAndNilFills) {
  const Value a = heap.new_array(host, 2);
  objops::array_set(host, heap, a.obj(), 0, Value::fixnum(1));
  objops::array_set(host, heap, a.obj(), 10, Value::fixnum(2));
  EXPECT_EQ(objops::array_len(host, a.obj()), 11);
  EXPECT_TRUE(objops::array_get(host, a.obj(), 5).is_nil());
  EXPECT_EQ(objops::array_get(host, a.obj(), 10).fixnum_val(), 2);
  EXPECT_EQ(objops::array_get(host, a.obj(), -1).fixnum_val(), 2);
  EXPECT_TRUE(objops::array_get(host, a.obj(), 999).is_nil());
  // Pop back down.
  EXPECT_EQ(objops::array_pop(host, a.obj()).fixnum_val(), 2);
  EXPECT_EQ(objops::array_len(host, a.obj()), 10);
}

TEST_F(ObjOps, HashRehashPreservesAllEntries) {
  const Value h = heap.new_hash(host);
  for (i64 i = 0; i < 500; ++i) {
    objops::hash_set(host, heap, h.obj(), Value::fixnum(i * 7919),
                     Value::fixnum(i));
  }
  EXPECT_EQ(objops::hash_size(host, h.obj()), 500);
  for (i64 i = 0; i < 500; ++i) {
    const Value v = objops::hash_get(host, h.obj(), Value::fixnum(i * 7919));
    ASSERT_TRUE(v.is_fixnum());
    EXPECT_EQ(v.fixnum_val(), i);
  }
  EXPECT_TRUE(
      objops::hash_get(host, h.obj(), Value::fixnum(-1)).is_nil());
}

TEST_F(ObjOps, HashStringKeysCompareByContent) {
  const Value h = heap.new_hash(host);
  const Value k1 = heap.new_string(host, "content-key");
  const Value k2 = heap.new_string(host, "content-key");  // distinct object
  objops::hash_set(host, heap, h.obj(), k1, Value::fixnum(10));
  objops::hash_set(host, heap, h.obj(), k2, Value::fixnum(20));
  EXPECT_EQ(objops::hash_size(host, h.obj()), 1) << "same content, one entry";
  EXPECT_EQ(objops::hash_get(host, h.obj(), k1).fixnum_val(), 20);
}

TEST_F(ObjOps, ValueEqNumericCrossType) {
  const Value f2 = heap.new_float(host, 2.0);
  EXPECT_TRUE(objops::value_eq(host, Value::fixnum(2), f2));
  EXPECT_TRUE(objops::value_eq(host, f2, Value::fixnum(2)));
  EXPECT_FALSE(objops::value_eq(host, Value::fixnum(3), f2));
  // Equal int and float hash identically (hash/eq contract).
  EXPECT_EQ(objops::value_hash(host, Value::fixnum(2)),
            objops::value_hash(host, f2));
}

TEST_F(ObjOps, InspectRendersStructures) {
  const Value arr = heap.new_array(host, 4);
  objops::array_push(host, heap, arr.obj(), Value::fixnum(1));
  objops::array_push(host, heap, arr.obj(), Value::nil());
  objops::array_push(host, heap, arr.obj(), heap.new_string(host, "s"));
  EXPECT_EQ(objops::value_inspect_direct(arr), "[1, nil, s]");
  EXPECT_EQ(objops::value_inspect_direct(Value::true_v()), "true");
}

struct RegistryFixture : public Fixture {
  RegistryFixture() : registry(&symbols) {}
  SymbolTable symbols;
  ClassRegistry registry;
};

using Registry = RegistryFixture;

TEST_F(Registry, MethodLookupWalksSuperclassChain) {
  const ClassId animal =
      registry.define_class(symbols.intern("Animal"), kClassObject);
  const ClassId bird = registry.define_class(symbols.intern("Bird"), animal);
  MethodInfo m;
  m.name = symbols.intern("legs");
  m.kind = MethodInfo::Kind::kBytecode;
  m.iseq = 7;
  const i32 idx = registry.define_method(animal, m);
  EXPECT_EQ(registry.lookup(bird, m.name), idx);
  EXPECT_EQ(registry.lookup(animal, m.name), idx);
  EXPECT_EQ(registry.lookup(kClassObject, m.name), -1);
  // Overriding in the subclass shadows.
  m.iseq = 9;
  const i32 idx2 = registry.define_method(bird, m);
  EXPECT_EQ(registry.lookup(bird, m.name), idx2);
  EXPECT_EQ(registry.lookup(animal, m.name), idx);
}

TEST_F(Registry, IvarShapeTablesShareUntilDivergence) {
  // §4.4 (d): a subclass defined after its parent's shape exists shares the
  // parent's ivar table (same table id → inline-cache hits across classes)
  // until it adds its own ivar.
  const ClassId base =
      registry.define_class(symbols.intern("Base"), kClassObject);
  const SymbolId x = symbols.intern("x");
  EXPECT_EQ(registry.ivar_index(base, x, true), 0u);

  const ClassId sub = registry.define_class(symbols.intern("Sub"), base);
  EXPECT_EQ(registry.ivar_table_id(sub), registry.ivar_table_id(base));
  EXPECT_EQ(registry.ivar_index(sub, x, false), 0u) << "shared shape";

  // Sub adds a new ivar: clone-on-write, new table id, entries inherited.
  const SymbolId y = symbols.intern("y");
  EXPECT_EQ(registry.ivar_index(sub, y, true), 1u);
  EXPECT_NE(registry.ivar_table_id(sub), registry.ivar_table_id(base));
  EXPECT_EQ(registry.ivar_index(base, y, false), ClassRegistry::kNoIvar);
  EXPECT_EQ(registry.ivar_index(sub, x, false), 0u) << "inherited entry kept";
}

TEST_F(Registry, IvarTablesArePerClassLikeCRuby) {
  // A subclass defined *before* the parent assigns any ivar gets its own
  // index space (CRuby's iv_index_tbl is per-class, created lazily); ivar
  // resolution always goes through the receiver's class, so inherited
  // initialize methods still work.
  const ClassId base2 =
      registry.define_class(symbols.intern("Base2"), kClassObject);
  const ClassId sub2 = registry.define_class(symbols.intern("Sub2"), base2);
  const SymbolId x = symbols.intern("x2");
  EXPECT_EQ(registry.ivar_index(base2, x, true), 0u);
  // Sub2 shares Object's (empty) table, not Base2's grown one.
  EXPECT_EQ(registry.ivar_index(sub2, x, false), ClassRegistry::kNoIvar);
  // Setting @x2 on a Sub2 instance creates it in Sub2's own table.
  EXPECT_EQ(registry.ivar_index(sub2, x, true), 0u);
}

TEST_F(Registry, ClassOfImmediates) {
  NullHost h;
  EXPECT_EQ(registry.class_of(h, Value::fixnum(3)), kClassInteger);
  EXPECT_EQ(registry.class_of(h, Value::nil()), kClassNil);
  EXPECT_EQ(registry.class_of(h, Value::true_v()), kClassTrue);
  EXPECT_EQ(registry.class_of(h, Value::symbol(1)), kClassSymbol);
}

TEST_F(Registry, ReopeningAClassKeepsIdentity) {
  const ClassId a =
      registry.define_class(symbols.intern("Reopened"), kClassObject);
  const ClassId b =
      registry.define_class(symbols.intern("Reopened"), kClassObject);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gilfree::vm
