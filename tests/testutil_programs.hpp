// Seeded MiniRuby program generator shared by property-style tests
// (test_fault, test_interp_modes).
//
// The generated programs exercise every extended-yield-point opcode family
// (locals, instance variables, class variables, sends, operators, array
// element access) across threads. Per-thread state is thread-local and the
// only shared accumulation is commutative and mutex-protected, so the final
// recorded sum is schedule-independent: any divergence between two runs of
// the same program means the VM executed it differently, not that the
// scheduler interleaved it differently.
#pragma once

#include <sstream>
#include <string>

#include "common/rng.hpp"

namespace gilfree::testutil {

inline std::string random_program(u64 seed) {
  Rng rng(seed);
  std::ostringstream body;
  const int stmts = 4 + static_cast<int>(rng.next_below(5));
  for (int s = 0; s < stmts; ++s) {
    switch (rng.next_below(5)) {
      case 0:
        body << "      x = x + " << 1 + rng.next_below(7) << "\n";
        break;
      case 1:
        body << "      x = x - " << 1 + rng.next_below(3) << "\n";
        break;
      case 2:
        body << "      a[" << rng.next_below(4) << "] = a["
             << rng.next_below(4) << "] + " << 1 + rng.next_below(5) << "\n";
        break;
      case 3:
        body << "      b = b.bump(" << 1 + rng.next_below(9) << ")\n";
        break;
      default:
        body << "      x = x + b.base + b.get\n";
        break;
    }
  }
  std::ostringstream src;
  src << R"RUBY(
class Box
  def initialize
    @@base = 3
    @v = 1
  end
  def bump(k)
    @v = @v + k
    self
  end
  def get
    @v
  end
  def base
    @@base
  end
end
$mutex = Mutex.new
$sum = 0
threads = []
3.times do |t|
  threads << Thread.new(t) do |tid|
    x = tid + 1
    a = [0, 0, 0, 0]
    b = Box.new
    i = 0
    while i < 150
)RUBY";
  src << body.str();
  src << R"RUBY(      i = i + 1
    end
    $mutex.synchronize do
      $sum = $sum + x + a[0] + a[1] + a[2] + a[3] + b.get
    end
  end
end
threads.each do |t|
  t.join
end
__record("sum", $sum)
)RUBY";
  return src.str();
}

}  // namespace gilfree::testutil
