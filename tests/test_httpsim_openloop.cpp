// Open-loop correctness: the arrival processes deliver the configured
// offered rate, queueing behaves like a queue (delay >= 0, monotone with
// offered load, bounded admission drops under overload), schedules are
// seed-deterministic, and every new CLI flag rejects bad values with
// std::invalid_argument (the strict-CLI convention of the bench binaries).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "htm/profile.hpp"
#include "httpsim/bench_server.hpp"
#include "httpsim/client_driver.hpp"
#include "httpsim/server_programs.hpp"
#include "runtime/engine.hpp"
#include "testutil_cli.hpp"

namespace gilfree {
namespace {

using httpsim::Arrival;
using httpsim::DriverConfig;
using httpsim::ShardOptions;

constexpr double kGhz = 5.5;  // zEC12 clock; cycles <-> seconds conversion

double measured_rps(const std::vector<httpsim::ScheduledRequest>& schedule) {
  if (schedule.size() < 2) return 0.0;
  const double span_s =
      static_cast<double>(schedule.back().at) / (kGhz * 1e9);
  return span_s > 0 ? static_cast<double>(schedule.size()) / span_s : 0.0;
}

TEST(OpenLoop, PoissonArrivalRateMatchesConfiguredRps) {
  DriverConfig d;
  d.arrival = Arrival::kPoisson;
  d.total_requests = 4'000;
  for (const double rps : {2'000.0, 50'000.0, 1'000'000.0}) {
    d.rps = rps;
    const auto schedule = httpsim::make_schedule(d, kGhz);
    ASSERT_EQ(schedule.size(), d.total_requests);
    const double measured = measured_rps(schedule);
    // Relative standard error of a 4000-sample Poisson mean is ~1.6%;
    // 10% tolerance is far outside noise but catches unit mistakes.
    EXPECT_NEAR(measured / rps, 1.0, 0.10) << "rps=" << rps;
  }
}

TEST(OpenLoop, MmppLongRunRateIsNormalizedToRps) {
  DriverConfig d;
  d.arrival = Arrival::kMmpp;
  d.total_requests = 20'000;
  d.rps = 100'000.0;
  d.burst_factor = 8.0;
  d.burst_on = 500'000;
  d.burst_off = 1'500'000;
  const auto schedule = httpsim::make_schedule(d, kGhz);
  // The burst-state rate is burst_factor * the quiet rate; the quiet rate
  // is scaled down so the long-run average still meets --rps. Bursty
  // streams need more samples for the mean to settle; 15% is ~6 standard
  // errors here.
  EXPECT_NEAR(measured_rps(schedule) / d.rps, 1.0, 0.15);

  // The stream really is bursty: the dispersion of per-window counts must
  // exceed a Poisson stream's (index of dispersion ~1).
  auto dispersion = [](const std::vector<httpsim::ScheduledRequest>& s) {
    const Cycles window = 500'000;
    std::vector<double> counts;
    std::size_t i = 0;
    for (Cycles t = 0; t < s.back().at; t += window) {
      double n = 0;
      while (i < s.size() && s[i].at < t + window) {
        ++n;
        ++i;
      }
      counts.push_back(n);
    }
    double mean = 0;
    for (double c : counts) mean += c;
    mean /= static_cast<double>(counts.size());
    double var = 0;
    for (double c : counts) var += (c - mean) * (c - mean);
    var /= static_cast<double>(counts.size());
    return mean > 0 ? var / mean : 0.0;
  };
  DriverConfig p = d;
  p.arrival = Arrival::kPoisson;
  const auto poisson = httpsim::make_schedule(p, kGhz);
  EXPECT_GT(dispersion(schedule), 2.0 * dispersion(poisson))
      << "MMPP must be visibly burstier than Poisson at the same rate";
}

TEST(OpenLoop, ScheduleIsSeedDeterministic) {
  DriverConfig d;
  d.arrival = Arrival::kMmpp;
  d.total_requests = 300;
  d.churn = 0.3;
  const auto a = httpsim::make_schedule(d, kGhz);
  const auto b = httpsim::make_schedule(d, kGhz);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].path, b[i].path);
    EXPECT_EQ(a[i].close, b[i].close);
  }
  DriverConfig other = d;
  other.seed = d.seed + 1;
  const auto c = httpsim::make_schedule(other, kGhz);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= a[i].at != c[i].at;
  EXPECT_TRUE(any_diff) << "different seeds must give different schedules";
}

TEST(OpenLoop, QueueDelayIsNonNegativeAndMonotoneWithOfferedLoad) {
  const std::string program = httpsim::webrick_source();
  const auto base =
      runtime::EngineConfig::htm_dynamic(htm::SystemProfile::zec12());
  DriverConfig d;
  d.arrival = Arrival::kPoisson;
  d.total_requests = 120;
  d.queue_limit = 4'096;  // no drops: isolate pure queueing delay

  double last_queue_mean = -1.0;
  for (const double rps : {20'000.0, 200'000.0, 2'000'000.0}) {
    d.rps = rps;
    const auto r = httpsim::run_server(base, program, d);
    EXPECT_EQ(r.completed, d.total_requests) << "rps=" << rps;
    EXPECT_EQ(r.dropped, 0u) << "rps=" << rps;
    for (const auto& rec : r.records) {
      EXPECT_GE(rec.accepted, rec.arrival) << "rps=" << rps;
      EXPECT_GE(rec.responded, rec.accepted) << "rps=" << rps;
    }
    EXPECT_GE(r.queue_mean_cycles, 0.0);
    EXPECT_GT(r.queue_mean_cycles, last_queue_mean)
        << "queue delay must grow with offered load (rps=" << rps << ")";
    last_queue_mean = r.queue_mean_cycles;
  }
}

TEST(OpenLoop, BoundedAdmissionQueueDropsUnderOverloadAndAccountsExactly) {
  const std::string program = httpsim::webrick_source();
  const auto base =
      runtime::EngineConfig::gil(htm::SystemProfile::zec12());
  DriverConfig d;
  d.arrival = Arrival::kPoisson;
  d.total_requests = 200;
  d.rps = 5'000'000.0;  // far beyond the service rate
  d.queue_limit = 8;
  const auto r = httpsim::run_server(base, program, d);
  EXPECT_GT(r.dropped, 0u) << "overload with a tiny queue must tail-drop";
  EXPECT_EQ(r.completed + r.dropped, d.total_requests);
  u32 dropped_in_log = 0;
  for (const auto& rec : r.records) {
    if (rec.dropped) {
      ++dropped_in_log;
      EXPECT_EQ(rec.accepted, 0u);
      EXPECT_EQ(rec.responded, 0u);
    }
  }
  EXPECT_EQ(dropped_in_log, r.dropped);
}

// --- strict-CLI rejection ---------------------------------------------------

/// Runs both open-loop from_flags parsers over one --flag=value argument
/// via the shared strict-CLI helper (tests/testutil_cli.hpp).
void expect_rejected(const std::string& flag) {
  testutil::expect_rejected(flag, [](const CliFlags& f) {
    httpsim::DriverConfig::from_flags(f);
    httpsim::ShardOptions::from_flags(f);
  });
}

TEST(OpenLoopCli, EveryNewFlagRejectsBadValues) {
  expect_rejected("--arrival=sometimes");
  expect_rejected("--rps=0");
  expect_rejected("--rps=-50");
  expect_rejected("--rps=fast");
  expect_rejected("--burst-factor=0.5");
  expect_rejected("--burst-on=0");
  expect_rejected("--burst-off=0");
  expect_rejected("--burst-on=often");
  expect_rejected("--queue-limit=0");
  expect_rejected("--churn=1.5");
  expect_rejected("--churn=-0.1");
  expect_rejected("--clients=0");
  expect_rejected("--requests=0");
  expect_rejected("--turnaround=-1");
  expect_rejected("--shards=0");
  expect_rejected("--shards=65");
  expect_rejected("--shards=many");
  expect_rejected("--router=random");
}

TEST(OpenLoopCli, GoodValuesParseIntoTheConfig) {
  std::vector<std::string> args = {
      "test",          "--arrival=mmpp",   "--rps=12500.5",
      "--clients=6",   "--requests=321",   "--turnaround=999",
      "--burst-factor=3", "--burst-on=1000", "--burst-off=2000",
      "--queue-limit=32", "--churn=0.5",   "--load-seed=77",
      "--shards=4",    "--router=rr"};
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  CliFlags flags(static_cast<int>(argv.size()), argv.data(),
                 /*throw_errors=*/true);
  const DriverConfig d = httpsim::DriverConfig::from_flags(flags);
  const ShardOptions so = httpsim::ShardOptions::from_flags(flags);
  flags.reject_unknown();  // every flag above must be consumed
  EXPECT_EQ(d.arrival, Arrival::kMmpp);
  EXPECT_DOUBLE_EQ(d.rps, 12500.5);
  EXPECT_EQ(d.clients, 6u);
  EXPECT_EQ(d.total_requests, 321u);
  EXPECT_EQ(d.client_turnaround, 999u);
  EXPECT_DOUBLE_EQ(d.burst_factor, 3.0);
  EXPECT_EQ(d.burst_on, 1'000u);
  EXPECT_EQ(d.burst_off, 2'000u);
  EXPECT_EQ(d.queue_limit, 32u);
  EXPECT_DOUBLE_EQ(d.churn, 0.5);
  EXPECT_EQ(d.seed, 77u);
  EXPECT_EQ(so.shards, 4u);
  EXPECT_EQ(so.router, httpsim::Router::kRoundRobin);
}

}  // namespace
}  // namespace gilfree
